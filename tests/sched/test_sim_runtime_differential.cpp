// Differential suite: the virtual-time RtOpexScheduler and the real-thread
// NodeRuntime implement the same paper mechanisms on two substrates. Their
// wall-clock numbers differ by design (DESIGN.md §2), but their *structure*
// must agree: every subframe terminates exactly once (completed, dropped or
// terminated), subtask accounting balances (migrated = hosted + recovered;
// recovered never exceeds migrated), and drops are always a subset of
// deadline misses. Matched configurations are run through both and the
// invariants checked on each side.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>

#include "model/timing_model.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/node_runtime.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"
#include "transport/transport.hpp"

namespace rtopex {
namespace {

constexpr unsigned kBasestations = 2;
constexpr std::size_t kSubframesPerBs = 8;
constexpr Duration kRttHalf = microseconds(500);

std::vector<sim::SubframeWork> matched_sim_work(std::uint64_t seed,
                                                int fixed_mcs = -1,
                                                double snr_db = 30.0) {
  sim::WorkloadConfig cfg;
  cfg.num_basestations = kBasestations;
  cfg.subframes_per_bs = kSubframesPerBs;
  cfg.seed = seed;
  cfg.fixed_mcs = fixed_mcs;
  cfg.snr_db = snr_db;
  const transport::FixedTransport transport(kRttHalf);
  const sim::WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  return gen.generate();
}

runtime::RuntimeConfig matched_runtime_config() {
  runtime::RuntimeConfig cfg;
  cfg.mode = runtime::RuntimeMode::kRtOpex;
  cfg.num_basestations = kBasestations;
  cfg.cores_per_bs = 2;
  cfg.subframes_per_bs = kSubframesPerBs;
  cfg.rtt_half = kRttHalf;
  // Real-time pacing scaled so a loaded CI host (or a sanitizer build)
  // keeps up; the structural invariants are pacing-independent.
  cfg.subframe_period = milliseconds(60);
  cfg.deadline_budget = milliseconds(120);
  cfg.mcs_cycle = {27, 16};
  cfg.phy.num_antennas = 2;
  cfg.phy.bandwidth = phy::Bandwidth::kMHz5;
  cfg.enforce_deadlines = false;
  cfg.seed = 21;
  return cfg;
}

struct Structural {
  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  std::size_t misses = 0;
  std::size_t migrated = 0;
  std::size_t recovered = 0;
};

/// Checks the simulator's metrics invariants and reduces them to the shared
/// structural summary.
Structural check_sim_side(const sim::SchedulerMetrics& m,
                          std::size_t expected_total) {
  EXPECT_EQ(m.total_subframes, expected_total);
  // Exactly-once termination: completed + dropped + terminated == total.
  EXPECT_EQ(m.deadline_misses, m.dropped + m.terminated);
  EXPECT_EQ(static_cast<std::size_t>(m.processing_us_hist.count()),
            m.total_subframes - m.deadline_misses);
  std::size_t per_bs_subframes = 0, per_bs_misses = 0;
  for (const auto& bs : m.per_bs) {
    per_bs_subframes += bs.subframes;
    per_bs_misses += bs.misses;
  }
  EXPECT_EQ(per_bs_subframes, m.total_subframes);
  EXPECT_EQ(per_bs_misses, m.deadline_misses);
  // Subtask conservation.
  EXPECT_LE(m.fft_subtasks_migrated, m.fft_subtasks_total);
  EXPECT_LE(m.decode_subtasks_migrated, m.decode_subtasks_total);
  EXPECT_LE(m.recoveries,
            m.fft_subtasks_migrated + m.decode_subtasks_migrated);
  return {m.total_subframes, m.total_subframes - m.deadline_misses,
          m.dropped, m.deadline_misses,
          m.fft_subtasks_migrated + m.decode_subtasks_migrated, m.recoveries};
}

/// Checks the runtime report's invariants and reduces them likewise.
Structural check_runtime_side(const runtime::RuntimeReport& report,
                              std::size_t expected_total) {
  EXPECT_EQ(report.records.size(), expected_total);
  std::set<std::pair<unsigned, std::uint32_t>> seen;
  Structural s;
  s.total = report.records.size();
  for (const auto& r : report.records) {
    EXPECT_TRUE(seen.insert({r.bs, r.index}).second)
        << "subframe terminated twice: bs=" << r.bs << " idx=" << r.index;
    if (r.dropped) {
      // A dropped subframe was never decoded and always counts as a miss.
      EXPECT_TRUE(r.deadline_missed);
      EXPECT_FALSE(r.crc_ok);
      ++s.dropped;
    } else {
      ++s.completed;
    }
    if (r.deadline_missed) ++s.misses;
    EXPECT_LE(r.timing.recovered,
              r.timing.fft_migrated + r.timing.decode_migrated);
    s.migrated += r.timing.fft_migrated + r.timing.decode_migrated;
    s.recovered += r.timing.recovered;
  }
  EXPECT_EQ(s.completed + s.dropped, s.total);
  EXPECT_EQ(report.migrations, s.migrated);
  EXPECT_EQ(report.recoveries, s.recovered);
  EXPECT_EQ(report.dropped, s.dropped);
  EXPECT_EQ(report.deadline_misses, s.misses);
  return s;
}

void check_agreement(const Structural& sim_s, const Structural& rt_s) {
  // Shared structural laws, independent of substrate (the per-side checks
  // already verified that terminal dispositions partition the total):
  for (const Structural* s : {&sim_s, &rt_s}) {
    EXPECT_LE(s->dropped, s->misses);       // drops are a subset of misses
    EXPECT_LE(s->recovered, s->migrated);   // recovery never invents work
    EXPECT_LE(s->completed, s->total);
  }
  EXPECT_EQ(sim_s.total, rt_s.total);       // matched workloads, same size
}

TEST(SimRuntimeDifferentialTest, SimSideInvariantsHold) {
  const auto work = matched_sim_work(17);
  sched::RtOpexConfig rc;
  rc.rtt_half = kRttHalf;
  sched::RtOpexScheduler sched(kBasestations, rc);
  check_sim_side(sched.run(work), work.size());
}

TEST(SimRuntimeDifferentialTest, RuntimeSideInvariantsHold) {
  // Force migration through the planner hook so the subtask-conservation
  // branch is exercised even on a single-core CI host.
  runtime::fault::Hooks hooks;
  hooks.plan_window = [](unsigned, unsigned, Duration& window) {
    window = milliseconds(1000);
  };
  runtime::fault::ScopedInjection inject(std::move(hooks));

  const auto cfg = matched_runtime_config();
  runtime::NodeRuntime rt(cfg);
  const auto s = check_runtime_side(
      rt.run(), static_cast<std::size_t>(kBasestations) * kSubframesPerBs);
  EXPECT_GT(s.migrated, 0u);
}

TEST(SimRuntimeDifferentialTest, StructuresAgreeOnMatchedConfig) {
  const auto work = matched_sim_work(23);
  sched::RtOpexConfig rc;
  rc.rtt_half = kRttHalf;
  sched::RtOpexScheduler sched(kBasestations, rc);
  const Structural sim_s = check_sim_side(sched.run(work), work.size());

  runtime::fault::Hooks hooks;
  hooks.plan_window = [](unsigned, unsigned, Duration& window) {
    window = milliseconds(1000);
  };
  runtime::fault::ScopedInjection inject(std::move(hooks));
  const auto cfg = matched_runtime_config();
  runtime::NodeRuntime rt(cfg);
  const Structural rt_s = check_runtime_side(
      rt.run(), static_cast<std::size_t>(kBasestations) * kSubframesPerBs);

  check_agreement(sim_s, rt_s);
}

TEST(SimRuntimeDifferentialTest, StructuresAgreeUnderOverload) {
  // Overloaded on both substrates: high MCS at a tight budget makes the
  // slack check drop subframes. The termination and subset laws must hold
  // on both sides even when most subframes miss.
  const auto work = matched_sim_work(29, /*fixed_mcs=*/27, /*snr_db=*/24.0);
  sched::RtOpexConfig rc;
  rc.rtt_half = microseconds(700);
  sched::RtOpexScheduler sched(kBasestations, rc);
  const Structural sim_s = check_sim_side(sched.run(work), work.size());

  auto cfg = matched_runtime_config();
  cfg.enforce_deadlines = true;
  cfg.deadline_budget = milliseconds(1);  // impossible on any host
  cfg.rtt_half = microseconds(500);
  runtime::NodeRuntime rt(cfg);
  const Structural rt_s = check_runtime_side(
      rt.run(), static_cast<std::size_t>(kBasestations) * kSubframesPerBs);
  EXPECT_EQ(rt_s.dropped, rt_s.total);  // nothing fits a 1 ms budget here

  check_agreement(sim_s, rt_s);
}

// Faulty differential: fronthaul loss plus one stalled core on both
// substrates. The classification laws must agree — lost subframes are never
// deadline misses, every miss is dropped/terminated/late — and each side
// still terminates every offered subframe exactly once.
TEST(SimRuntimeDifferentialTest, StructuresAgreeUnderFaults) {
  constexpr double kLossProb = 0.25;

  sim::WorkloadConfig wc;
  wc.num_basestations = kBasestations;
  wc.subframes_per_bs = 64;  // enough to straddle the failure instant
  wc.seed = 37;
  wc.fronthaul_faults.loss_prob = kLossProb;
  const transport::FixedTransport transport(kRttHalf);
  const sim::WorkloadGenerator gen(wc, transport, model::paper_gpp_model());
  const auto work = gen.generate();

  sched::RtOpexConfig rc;
  rc.rtt_half = kRttHalf;
  rc.core_failures.push_back({0, milliseconds(32)});  // stall core 0 mid-run
  sched::RtOpexScheduler sched(kBasestations, rc);
  const auto m = sched.run(work);
  EXPECT_EQ(m.total_subframes, work.size());
  EXPECT_GT(m.resilience.lost_subframes, 0u);
  EXPECT_EQ(m.resilience.failovers, 1u);
  EXPECT_GE(m.resilience.repartitions, 1u);
  EXPECT_EQ(m.deadline_misses,
            m.dropped + m.terminated + m.resilience.late_arrivals);
  EXPECT_EQ(static_cast<std::size_t>(m.processing_us_hist.count()),
            m.total_subframes - m.deadline_misses -
                m.resilience.lost_subframes);

  // Runtime twin: same loss probability plus worker 0 killed mid-run and
  // recovered by the watchdog. The fault RNG streams differ across
  // substrates, so the counts are compared structurally, not numerically.
  auto cfg = matched_runtime_config();
  cfg.subframes_per_bs = 16;
  cfg.resilience.fronthaul_faults.loss_prob = kLossProb;
  cfg.resilience.enable_watchdog = true;
  cfg.resilience.watchdog_timeout = cfg.subframe_period;
  auto armed = std::make_shared<std::atomic<bool>>(false);
  runtime::fault::Hooks hooks;
  hooks.transport_jitter = [armed](unsigned, std::uint32_t index) {
    if (index >= 8) armed->store(true, std::memory_order_release);
    return Duration{0};
  };
  hooks.kill_worker = [armed](std::size_t worker) {
    return worker == 0 && armed->load(std::memory_order_acquire);
  };
  runtime::fault::ScopedInjection inject(std::move(hooks));
  runtime::NodeRuntime rt(cfg);
  const auto report = rt.run();

  const std::size_t offered =
      static_cast<std::size_t>(kBasestations) * cfg.subframes_per_bs;
  EXPECT_EQ(report.records.size(), offered);
  std::set<std::pair<unsigned, std::uint32_t>> seen;
  std::size_t processed = 0, rt_lost = 0, rt_late = 0, rt_dropped = 0;
  for (const auto& r : report.records) {
    EXPECT_TRUE(seen.insert({r.bs, r.index}).second);
    if (r.lost) {
      ++rt_lost;
      EXPECT_FALSE(r.deadline_missed);  // loss is not a miss, as in the sim
    } else if (r.late_arrival) {
      ++rt_late;
      EXPECT_TRUE(r.deadline_missed);
    } else if (r.dropped) {
      ++rt_dropped;
    } else {
      ++processed;
    }
  }
  EXPECT_EQ(processed + rt_dropped + rt_late + rt_lost, offered);
  EXPECT_EQ(report.resilience.lost_subframes, rt_lost);
  EXPECT_GT(rt_lost, 0u);
  EXPECT_EQ(report.resilience.failovers, 1u);
  EXPECT_EQ(report.crc_failures, 0u);
}

// The simulator's RT-OPEX must degrade to the partitioned baseline when
// migration is disabled — the differential anchor for the migration
// machinery itself (any structural divergence here is a planner bug, not a
// timing artifact).
TEST(SimRuntimeDifferentialTest, NoMigrationDegradesToPartitioned) {
  const auto work = matched_sim_work(31);
  sched::RtOpexConfig rc;
  rc.rtt_half = kRttHalf;
  rc.migrate_fft = false;
  rc.migrate_decode = false;
  sched::RtOpexScheduler opex(kBasestations, rc);
  sched::PartitionedScheduler part(kBasestations, {kRttHalf});
  const auto mo = opex.run(work);
  const auto mp = part.run(work);
  EXPECT_EQ(mo.deadline_misses, mp.deadline_misses);
  EXPECT_EQ(mo.dropped, mp.dropped);
  EXPECT_EQ(mo.terminated, mp.terminated);
  EXPECT_EQ(mo.processing_us_hist.count(), mp.processing_us_hist.count());
}

}  // namespace
}  // namespace rtopex
