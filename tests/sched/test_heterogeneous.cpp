// Heterogeneous transport (paper §5 D): per-basestation fronthaul delays
// shrink the far cells' slack; RT-OPEX pools the near cells' idle cycles.
#include <gtest/gtest.h>

#include "model/timing_model.hpp"
#include "sched/global.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"
#include "transport/transport.hpp"

namespace rtopex::sched {
namespace {

std::vector<sim::SubframeWork> heterogeneous_work() {
  sim::WorkloadConfig cfg;
  cfg.num_basestations = 4;
  cfg.subframes_per_bs = 5000;
  cfg.mean_load_override = 0.5;
  cfg.per_bs_extra_delay = {0, 0, microseconds(150), microseconds(300)};
  cfg.seed = 5;
  const transport::FixedTransport transport(microseconds(400));
  const sim::WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  return gen.generate();
}

TEST(HeterogeneousTest, ArrivalsShiftButDeadlinesDoNot) {
  const auto work = heterogeneous_work();
  for (const auto& w : work) {
    const Duration extra = w.bs == 2   ? microseconds(150)
                           : w.bs == 3 ? microseconds(300)
                                       : 0;
    EXPECT_EQ(w.arrival, w.radio_time + microseconds(400) + extra);
    EXPECT_EQ(w.deadline, w.radio_time + milliseconds(2));
  }
}

TEST(HeterogeneousTest, FarCellsMissMoreUnderPartitioned) {
  const auto work = heterogeneous_work();
  PartitionedScheduler sched(4, {microseconds(400)});
  const auto m = sched.run(work);
  const auto rate = [&](unsigned bs) {
    return static_cast<double>(m.per_bs[bs].misses) /
           static_cast<double>(m.per_bs[bs].subframes);
  };
  // Less slack -> strictly more misses for the farthest cell.
  EXPECT_GT(rate(3), 5.0 * rate(0));
  EXPECT_GT(rate(3), rate(2));
}

TEST(HeterogeneousTest, RtOpexRescuesFarCells) {
  const auto work = heterogeneous_work();
  PartitionedScheduler part(4, {microseconds(400)});
  RtOpexConfig rc;
  rc.rtt_half = microseconds(400);
  RtOpexScheduler opex(4, rc);
  const auto mp = part.run(work);
  const auto mo = opex.run(work);
  const auto far_rate = [](const sim::SchedulerMetrics& m) {
    return static_cast<double>(m.per_bs[3].misses) /
           static_cast<double>(m.per_bs[3].subframes);
  };
  EXPECT_GT(far_rate(mp), 0.05);
  EXPECT_LT(far_rate(mo), far_rate(mp) / 10.0);
}

TEST(HeterogeneousTest, EdfEquivalentToFifoWithinOneSubframeSpread) {
  // The paper claims EDF == FIFO under uniform delay (§3.1.2); in fact the
  // equivalence extends to any spread below one subframe period, because a
  // deadline inversion needs a far cell's tick-j subframe to arrive after a
  // near cell's tick-(j+1) — i.e. an extra delay beyond 1 ms, which leaves
  // no viable processing budget anyway (next test).
  sim::WorkloadConfig cfg;
  cfg.num_basestations = 4;
  cfg.subframes_per_bs = 5000;
  cfg.mean_load_override = 0.55;
  cfg.per_bs_extra_delay = {0, microseconds(200), microseconds(500),
                            microseconds(800)};
  cfg.seed = 6;
  const transport::FixedTransport transport(microseconds(300));
  const sim::WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  const auto work = gen.generate();

  GlobalConfig edf, fifo;
  edf.num_cores = fifo.num_cores = 4;  // force queueing
  edf.order = DispatchOrder::kEdf;
  fifo.order = DispatchOrder::kFifo;
  const auto me = GlobalScheduler(4, edf).run(work);
  const auto mf = GlobalScheduler(4, fifo).run(work);
  EXPECT_EQ(me.deadline_misses, mf.deadline_misses);
  for (unsigned bs = 0; bs < 4; ++bs)
    EXPECT_EQ(me.per_bs[bs].misses, mf.per_bs[bs].misses);
}

TEST(HeterogeneousTest, BeyondBudgetDelayLosesTheCellEntirely) {
  // Extra delay beyond the processing budget (paper Eq. 3): the far cell
  // cannot fit even its lightest subframes and misses everything, while the
  // near cells are unaffected.
  sim::WorkloadConfig cfg;
  cfg.num_basestations = 2;
  cfg.subframes_per_bs = 2000;
  cfg.per_bs_extra_delay = {0, microseconds(1200)};
  cfg.seed = 7;
  const transport::FixedTransport transport(microseconds(300));
  const sim::WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  const auto work = gen.generate();
  PartitionedScheduler sched(2, {microseconds(300)});
  const auto m = sched.run(work);
  EXPECT_EQ(m.per_bs[1].misses, m.per_bs[1].subframes);
  EXPECT_LT(m.per_bs[0].misses, m.per_bs[0].subframes / 10);
}

}  // namespace
}  // namespace rtopex::sched
