// Behavioural tests of the three node schedulers on the virtual-time
// simulator, including the paper's key guarantees.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "model/timing_model.hpp"
#include "sched/global.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"
#include "transport/transport.hpp"

namespace rtopex::sched {
namespace {

std::vector<sim::SubframeWork> make_work(std::size_t per_bs, Duration rtt_half,
                                         std::uint64_t seed = 1,
                                         int fixed_mcs = -1,
                                         double snr_db = 30.0) {
  sim::WorkloadConfig cfg;
  cfg.num_basestations = 4;
  cfg.subframes_per_bs = per_bs;
  cfg.seed = seed;
  cfg.fixed_mcs = fixed_mcs;
  cfg.snr_db = snr_db;
  const transport::FixedTransport transport(rtt_half);
  const sim::WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  return gen.generate();
}

TEST(PartitionedTest, MappingFormulaMatchesPaper) {
  PartitionedConfig cfg;
  cfg.rtt_half = microseconds(500);
  EXPECT_EQ(cfg.cores_per_bs(), 2u);  // ceil(1.5 ms)
  PartitionedScheduler sched(4, cfg);
  EXPECT_EQ(sched.num_cores(), 8u);
  // core = bs * 2 + j mod 2 (paper §3.1.1).
  EXPECT_EQ(sched.core_of(0, 0), 0u);
  EXPECT_EQ(sched.core_of(0, 1), 1u);
  EXPECT_EQ(sched.core_of(0, 2), 0u);
  EXPECT_EQ(sched.core_of(3, 5), 7u);
}

TEST(PartitionedTest, AccountsEverySubframe) {
  const auto work = make_work(3000, microseconds(500));
  PartitionedScheduler sched(4, {microseconds(500)});
  const auto m = sched.run(work);
  EXPECT_EQ(m.total_subframes, work.size());
  EXPECT_EQ(m.deadline_misses, m.dropped + m.terminated);
  std::size_t per_bs_total = 0;
  for (const auto& bs : m.per_bs) per_bs_total += bs.subframes;
  EXPECT_EQ(per_bs_total, work.size());
  // Completed + missed == total. Raw samples are off by default; the
  // histogram carries the completed count.
  EXPECT_TRUE(m.processing_time_us.empty());
  EXPECT_EQ(static_cast<std::size_t>(m.processing_us_hist.count()) +
                m.deadline_misses,
            m.total_subframes);
}

TEST(PartitionedTest, LowLoadHasNoMisses) {
  const auto work = make_work(2000, microseconds(400), 2, /*fixed_mcs=*/4);
  PartitionedScheduler sched(4, {microseconds(400)});
  EXPECT_EQ(sched.run(work).deadline_misses, 0u);
}

TEST(PartitionedTest, HighLoadAtTightBudgetMissesEverything) {
  // Paper Fig. 17: at high fixed MCS the partitioned scheduler misses ~100%.
  // MCS 27, L >= 2 exceeds 1.3 ms; with Lm = 4 most subframes do.
  const auto work = make_work(2000, microseconds(700), 3, /*fixed_mcs=*/27,
                              /*snr_db=*/24.0);
  PartitionedScheduler sched(4, {microseconds(700)});
  const auto m = sched.run(work);
  EXPECT_GT(m.miss_rate(), 0.5);
}

TEST(PartitionedTest, GapsReflectProcessingVariation) {
  const auto work = make_work(3000, microseconds(500));
  PartitionedConfig pc;
  pc.rtt_half = microseconds(500);
  pc.record_samples = true;  // raw gaps alongside the histogram
  PartitionedScheduler sched(4, pc);
  const auto m = sched.run(work);
  // Each core sees a new subframe every 2 ms and processes for 0.5-2 ms:
  // gaps must exist and be below 2 ms.
  EXPECT_GT(m.gap_us.size(), work.size() / 2);
  for (const double g : m.gap_us) {
    EXPECT_GT(g, 0.0);
    EXPECT_LE(g, 2000.0);
  }
  // Histogram and raw-sample views of the same stream must agree.
  EXPECT_EQ(m.gap_us_hist.count(), m.gap_us.size());
  EXPECT_GT(m.gap_us_hist.min(), 0.0);
  EXPECT_LE(m.gap_us_hist.max(), 2000.0);
}

TEST(GlobalTest, FewCoresCauseQueueingMisses) {
  // Below the queueing knee (4 basestations need ~4 cores at this load),
  // misses explode; above it they flatten (paper Fig. 19's shape).
  const auto work = make_work(3000, microseconds(500), 4);
  GlobalConfig small;
  small.num_cores = 2;
  GlobalConfig big;
  big.num_cores = 8;
  GlobalScheduler sched_small(4, small);
  GlobalScheduler sched_big(4, big);
  const double small_rate = sched_small.run(work).miss_rate();
  const double big_rate = sched_big.run(work).miss_rate();
  EXPECT_GT(small_rate, 5.0 * big_rate);
}

TEST(GlobalTest, InsensitiveBeyondEightCores) {
  // Paper Fig. 15/19: doubling 8 -> 16 cores does not help.
  const auto work = make_work(5000, microseconds(500), 5);
  GlobalConfig c8, c16;
  c8.num_cores = 8;
  c16.num_cores = 16;
  const double r8 = GlobalScheduler(4, c8).run(work).miss_rate();
  const double r16 = GlobalScheduler(4, c16).run(work).miss_rate();
  EXPECT_NEAR(r16, r8, r8 * 0.5 + 1e-4);
}

TEST(GlobalTest, SwitchPenaltyHurts) {
  const auto work = make_work(4000, microseconds(600), 6);
  GlobalConfig with, without;
  with.switch_penalty = microseconds(80);
  without.switch_penalty = 0;
  const double rate_with = GlobalScheduler(4, with).run(work).miss_rate();
  const double rate_without = GlobalScheduler(4, without).run(work).miss_rate();
  EXPECT_GE(rate_with, rate_without);
}

TEST(GlobalTest, FifoAndEdfAgreeUnderUniformDelay) {
  // Paper §3.1.2: EDF == FIFO when all basestations share one delay.
  const auto work = make_work(3000, microseconds(500), 7);
  GlobalConfig edf, fifo;
  edf.order = DispatchOrder::kEdf;
  fifo.order = DispatchOrder::kFifo;
  const auto me = GlobalScheduler(4, edf).run(work);
  const auto mf = GlobalScheduler(4, fifo).run(work);
  EXPECT_EQ(me.deadline_misses, mf.deadline_misses);
}

TEST(RtOpexTest, NeverWorseThanPartitioned) {
  // The paper's key guarantee (§3.2.1 B): RT-OPEX performance is equal to
  // or strictly better than the no-migration baseline. Paired comparison
  // across seeds and budgets.
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    for (const int rtt_us : {400, 550, 700}) {
      const auto work = make_work(3000, microseconds(rtt_us), seed);
      PartitionedScheduler part(4, {microseconds(rtt_us)});
      RtOpexConfig rc;
      rc.rtt_half = microseconds(rtt_us);
      RtOpexScheduler opex(4, rc);
      const auto mp = part.run(work);
      const auto mo = opex.run(work);
      EXPECT_LE(mo.deadline_misses, mp.deadline_misses)
          << "seed=" << seed << " rtt=" << rtt_us;
    }
  }
}

TEST(RtOpexTest, OrderOfMagnitudeBetterOnPaperWorkload) {
  // Fig. 15's headline: >= 10x lower miss rate at the paper's scale.
  const auto work = make_work(30000, microseconds(500), 1);
  PartitionedScheduler part(4, {microseconds(500)});
  RtOpexConfig rc;
  rc.rtt_half = microseconds(500);
  RtOpexScheduler opex(4, rc);
  const double p = part.run(work).miss_rate();
  const double o = opex.run(work).miss_rate();
  EXPECT_GT(p, 1e-3);
  EXPECT_LT(o, p / 10.0);
}

TEST(RtOpexTest, MigratesBothStages) {
  const auto work = make_work(3000, microseconds(500), 8);
  RtOpexConfig rc;
  rc.rtt_half = microseconds(500);
  RtOpexScheduler opex(4, rc);
  const auto m = opex.run(work);
  EXPECT_GT(m.fft_subtasks_migrated, 0u);
  EXPECT_GT(m.decode_subtasks_migrated, 0u);
  EXPECT_LE(m.fft_subtasks_migrated, m.fft_subtasks_total);
  EXPECT_LE(m.decode_subtasks_migrated, m.decode_subtasks_total);
}

TEST(RtOpexTest, MigrationTogglesWork) {
  const auto work = make_work(3000, microseconds(500), 9);
  RtOpexConfig none;
  none.rtt_half = microseconds(500);
  none.migrate_fft = false;
  none.migrate_decode = false;
  RtOpexScheduler opex(4, none);
  const auto m = opex.run(work);
  EXPECT_EQ(m.fft_subtasks_migrated, 0u);
  EXPECT_EQ(m.decode_subtasks_migrated, 0u);
  // Without migration it must equal partitioned exactly.
  PartitionedScheduler part(4, {microseconds(500)});
  const auto mp = part.run(work);
  EXPECT_EQ(m.deadline_misses, mp.deadline_misses);
  EXPECT_EQ(m.dropped, mp.dropped);
}

TEST(RtOpexTest, DisablingRecoveryCausesLosses) {
  // Ablation: with stochastic transport, mispredicted windows preempt
  // migrated subtasks; without recovery those subframes are lost.
  sim::WorkloadConfig cfg;
  cfg.num_basestations = 4;
  cfg.subframes_per_bs = 10000;
  cfg.seed = 10;
  const transport::CompositeTransport transport(
      transport::FronthaulModel{}, transport::cloud_params_10gbe());
  const sim::WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  const auto work = gen.generate();

  RtOpexConfig with, without;
  with.rtt_half = without.rtt_half = microseconds(300);
  without.enable_recovery = false;
  const auto m_with = RtOpexScheduler(4, with).run(work);
  const auto m_without = RtOpexScheduler(4, without).run(work);
  EXPECT_GT(m_with.recoveries, 0u);
  EXPECT_GE(m_without.deadline_misses, m_with.deadline_misses);
}

// Metrics invariants that must hold for every scheduler on any workload:
// the counters are different views of one partition of the subframe set.
void check_metrics_invariants(sim::SchedulerMetrics m, std::size_t expected,
                              const char* who) {
  SCOPED_TRACE(who);
  EXPECT_EQ(m.total_subframes, expected);
  EXPECT_EQ(m.dropped + m.terminated, m.deadline_misses);
  EXPECT_EQ(static_cast<std::size_t>(m.processing_us_hist.count()),
            m.total_subframes - m.deadline_misses);
  std::size_t bs_subframes = 0, bs_misses = 0;
  std::uint64_t bs_hist = 0;
  for (const auto& bs : m.per_bs) {
    bs_subframes += bs.subframes;
    bs_misses += bs.misses;
    bs_hist += bs.processing_us.count();
  }
  EXPECT_EQ(bs_subframes, m.total_subframes);
  EXPECT_EQ(bs_misses, m.deadline_misses);
  // The per-basestation histograms partition the aggregate one.
  EXPECT_EQ(bs_hist, m.processing_us_hist.count());
  // Decode failures come only from subframes that finished processing.
  EXPECT_LE(m.decode_failures,
            static_cast<std::size_t>(m.processing_us_hist.count()));
  // Migration accounting never exceeds the offered subtasks.
  EXPECT_LE(m.fft_subtasks_migrated, m.fft_subtasks_total);
  EXPECT_LE(m.decode_subtasks_migrated, m.decode_subtasks_total);
  EXPECT_LE(m.recoveries,
            m.fft_subtasks_migrated + m.decode_subtasks_migrated);
  if (m.gap_us_hist.count() > 0) EXPECT_GT(m.gap_us_hist.min(), 0.0);
}

TEST(MetricsInvariantTest, HoldForAllThreeSchedulers) {
  // Mixed-load workload with real misses so the partition is non-trivial.
  for (const std::uint64_t seed : {41u, 42u}) {
    const auto work = make_work(3000, microseconds(600), seed);
    PartitionedScheduler part(4, {microseconds(600)});
    check_metrics_invariants(part.run(work), work.size(), "partitioned");

    GlobalConfig gc;
    gc.num_cores = 5;
    GlobalScheduler glob(4, gc);
    check_metrics_invariants(glob.run(work), work.size(), "global");

    RtOpexConfig rc;
    rc.rtt_half = microseconds(600);
    RtOpexScheduler opex(4, rc);
    check_metrics_invariants(opex.run(work), work.size(), "rt-opex");
  }
}

TEST(MetricsInvariantTest, HoldUnderOverloadAndUnderload) {
  // Underload: no misses; overload: mostly misses. The invariants are
  // load-independent.
  const auto light = make_work(1500, microseconds(400), 43, /*fixed_mcs=*/4);
  const auto heavy = make_work(1500, microseconds(700), 44, /*fixed_mcs=*/27,
                               /*snr_db=*/24.0);
  for (const auto* work : {&light, &heavy}) {
    PartitionedScheduler part(4, {microseconds(700)});
    check_metrics_invariants(part.run(*work), work->size(), "partitioned");
    RtOpexConfig rc;
    rc.rtt_half = microseconds(700);
    RtOpexScheduler opex(4, rc);
    check_metrics_invariants(opex.run(*work), work->size(), "rt-opex");
  }
}

TEST(SchedulerValidationTest, RejectsBadConfigs) {
  EXPECT_THROW(PartitionedScheduler(0, {microseconds(500)}),
               std::invalid_argument);
  EXPECT_THROW(PartitionedScheduler(4, {milliseconds(3)}),
               std::invalid_argument);
  GlobalConfig gc;
  gc.num_cores = 0;
  EXPECT_THROW(GlobalScheduler(4, gc), std::invalid_argument);
  RtOpexConfig rc;
  rc.rtt_half = -1;
  EXPECT_THROW(RtOpexScheduler(4, rc), std::invalid_argument);
}

TEST(SchedulerValidationTest, RtOpexRejectsRttConsumingWholeBudget) {
  // rtt_half >= the 2 ms end-to-end budget leaves zero processing cores
  // (cores_per_bs() would be 0) — must throw, not divide by zero or hang.
  RtOpexConfig rc;
  rc.rtt_half = kEndToEndBudget;
  EXPECT_THROW(RtOpexScheduler(4, rc), std::invalid_argument);
  rc.rtt_half = kEndToEndBudget + microseconds(1);
  EXPECT_THROW(RtOpexScheduler(4, rc), std::invalid_argument);
  // Just inside the budget is fine and yields at least one core.
  rc.rtt_half = kEndToEndBudget - microseconds(1);
  RtOpexScheduler sched(4, rc);
  EXPECT_GE(sched.num_cores(), 4u);
}

TEST(SchedulerValidationTest, EmptyWorkloadDegradesGracefully) {
  RtOpexConfig rc;
  rc.rtt_half = microseconds(500);
  RtOpexScheduler opex(4, rc);
  const auto m = opex.run({});
  EXPECT_EQ(m.total_subframes, 0u);
  EXPECT_EQ(m.deadline_misses, 0u);
  EXPECT_TRUE(m.processing_time_us.empty());
  EXPECT_EQ(m.processing_us_hist.count(), 0u);
  PartitionedScheduler part(4, {microseconds(500)});
  EXPECT_EQ(part.run({}).total_subframes, 0u);
  GlobalConfig gc;
  gc.num_cores = 2;
  GlobalScheduler glob(4, gc);
  EXPECT_EQ(glob.run({}).total_subframes, 0u);
}

}  // namespace
}  // namespace rtopex::sched
