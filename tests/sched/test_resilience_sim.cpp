// Degraded-mode resilience layer, virtual-time side: fronthaul loss/late
// classification in the workload and schedulers, deterministic core-failure
// repartitioning in RT-OPEX, and graceful degradation strictly reducing
// deadline misses — the simulator mirror of the runtime mechanisms, fully
// deterministic (no threads, no wall clock).
#include <gtest/gtest.h>

#include <map>

#include "model/timing_model.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"
#include "transport/transport.hpp"

namespace rtopex {
namespace {

std::vector<sim::SubframeWork> make_work(
    const sim::WorkloadConfig& cfg, Duration rtt_half = microseconds(500)) {
  const transport::FixedTransport transport(rtt_half);
  const sim::WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  return gen.generate();
}

sim::WorkloadConfig base_workload() {
  sim::WorkloadConfig cfg;
  cfg.num_basestations = 4;
  cfg.subframes_per_bs = 2000;
  cfg.seed = 1;
  return cfg;
}

/// Conservation under faults: processed + dropped + terminated + late +
/// lost == offered, and lost subframes are not deadline misses.
void check_fault_accounting(const sim::SchedulerMetrics& m,
                            std::size_t offered) {
  EXPECT_EQ(m.total_subframes, offered);
  EXPECT_EQ(m.deadline_misses,
            m.dropped + m.terminated + m.resilience.late_arrivals);
  EXPECT_EQ(static_cast<std::size_t>(m.processing_us_hist.count()),
            m.total_subframes - m.deadline_misses -
                m.resilience.lost_subframes);
}

TEST(ResilienceSimTest, WorkloadFaultsAreIndependentOfPayloadStreams) {
  // The fault process draws from its own RNG stream: a faulty run's clean
  // twin has bit-identical costs, iterations and MCS per subframe — only
  // `lost` flags and (late) arrivals differ.
  auto cfg = base_workload();
  cfg.subframes_per_bs = 500;
  const auto clean = make_work(cfg);
  cfg.fronthaul_faults.loss_prob = 0.2;
  cfg.fronthaul_faults.late_prob = 0.2;
  const auto faulty = make_work(cfg);
  ASSERT_EQ(clean.size(), faulty.size());

  std::map<std::pair<unsigned, std::uint32_t>, const sim::SubframeWork*> twin;
  for (const auto& w : clean) twin[{w.bs, w.index}] = &w;
  std::size_t lost = 0, delayed = 0;
  for (const auto& w : faulty) {
    const sim::SubframeWork& c = *twin.at({w.bs, w.index});
    EXPECT_EQ(w.mcs, c.mcs);
    EXPECT_EQ(w.iterations, c.iterations);
    EXPECT_EQ(w.costs.decode, c.costs.decode);
    EXPECT_EQ(w.deadline, c.deadline);
    EXPECT_GE(w.arrival, c.arrival);
    if (w.lost) ++lost;
    if (w.arrival > c.arrival) ++delayed;
    EXPECT_FALSE(c.lost);
  }
  EXPECT_GT(lost, 0u);
  EXPECT_GT(delayed, 0u);
}

TEST(ResilienceSimTest, SchedulersClassifyLossAndLateArrivals) {
  auto cfg = base_workload();
  cfg.fronthaul_faults.loss_prob = 0.2;
  cfg.fronthaul_faults.late_prob = 0.2;
  cfg.fronthaul_faults.late_delay_mean = milliseconds(1);
  const auto work = make_work(cfg);

  sched::PartitionedScheduler part(cfg.num_basestations, {microseconds(500)});
  const auto m = part.run(work);
  check_fault_accounting(m, work.size());
  EXPECT_GT(m.resilience.lost_subframes, 0u);
  EXPECT_GT(m.resilience.late_arrivals, 0u);

  // RT-OPEX classifies identically: faults are a property of the workload,
  // not of the scheduling policy.
  sched::RtOpexConfig rc;
  const auto mo = sched::RtOpexScheduler(cfg.num_basestations, rc).run(work);
  check_fault_accounting(mo, work.size());
  EXPECT_EQ(mo.resilience.lost_subframes, m.resilience.lost_subframes);
  EXPECT_EQ(mo.resilience.late_arrivals, m.resilience.late_arrivals);
}

// Acceptance-criterion test: at a transport delay where the partitioned
// scheduler's WCET admission drops a measurable share of subframes, enabling
// graceful degradation must strictly reduce deadline misses and populate the
// degrade histogram — quality traded instead of subframes dropped.
TEST(ResilienceSimTest, DegradationStrictlyReducesMisses) {
  auto cfg = base_workload();
  const Duration rtt = microseconds(700);
  const auto work = make_work(cfg, rtt);

  sched::PartitionedConfig clean;
  clean.rtt_half = rtt;
  const auto m0 = sched::PartitionedScheduler(cfg.num_basestations, clean)
                      .run(work);
  ASSERT_GT(m0.dropped, 0u) << "baseline must drop for the test to bite";

  sched::PartitionedConfig degraded = clean;
  degraded.degrade.enabled = true;
  degraded.degrade.min_iterations = 1;
  const auto m1 = sched::PartitionedScheduler(cfg.num_basestations, degraded)
                      .run(work);

  EXPECT_LT(m1.deadline_misses, m0.deadline_misses);
  EXPECT_LT(m1.dropped, m0.dropped);
  EXPECT_GT(m1.resilience.degraded, 0u);
  EXPECT_EQ(m1.resilience.degrade_histogram[1] +
                m1.resilience.degrade_histogram[2],
            m1.resilience.degraded);
  // A capped decode can NACK where the full decode would have converged;
  // those are accounted as degraded failures, never as ordinary ones.
  EXPECT_LE(m1.resilience.degraded_decode_failures, m1.resilience.degraded);
  EXPECT_EQ(m0.resilience.degraded, 0u);

  // The same knob on RT-OPEX never increases misses.
  sched::RtOpexConfig rc;
  rc.rtt_half = rtt;
  const auto o0 = sched::RtOpexScheduler(cfg.num_basestations, rc).run(work);
  rc.degrade.enabled = true;
  const auto o1 = sched::RtOpexScheduler(cfg.num_basestations, rc).run(work);
  EXPECT_LE(o1.deadline_misses, o0.deadline_misses);
}

TEST(ResilienceSimTest, CoreFailureRepartitionsDeterministically) {
  auto cfg = base_workload();
  cfg.num_basestations = 2;
  cfg.subframes_per_bs = 200;
  const auto work = make_work(cfg);

  sched::RtOpexConfig rc;
  // Fail core 0 (basestation 0, even subframe indices) mid-run, between a
  // subframe's radio reception and its arrival at the node: exactly one
  // in-flight job is requeued, all later even-index subframes of bs 0 are
  // repartitioned onto the survivors.
  rc.core_failures.push_back({0, milliseconds(100) + microseconds(200)});
  sched::RtOpexScheduler sched(cfg.num_basestations, rc);
  const auto m = sched.run(work);

  EXPECT_EQ(m.total_subframes, work.size());
  EXPECT_EQ(m.resilience.failovers, 1u);
  EXPECT_EQ(m.resilience.repartitions, 1u);
  EXPECT_EQ(m.resilience.requeued_jobs, 1u);
  EXPECT_EQ(m.deadline_misses, m.dropped + m.terminated);

  // The failure can only hurt: the clean twin has no more misses, and the
  // failed run still terminates every subframe exactly once.
  const auto clean =
      sched::RtOpexScheduler(cfg.num_basestations, {}).run(work);
  EXPECT_LE(clean.deadline_misses, m.deadline_misses);
  EXPECT_EQ(clean.resilience.failovers, 0u);
}

TEST(ResilienceSimTest, ValidationThrows) {
  sched::RtOpexConfig rc;
  rc.core_failures.push_back({99, 0});  // out of range for 2 BS x 2 cores
  EXPECT_THROW(sched::RtOpexScheduler(2, rc), std::invalid_argument);

  auto cfg = base_workload();
  cfg.fronthaul_faults.loss_prob = -0.5;
  EXPECT_THROW(make_work(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace rtopex
