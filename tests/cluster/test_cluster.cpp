// Cluster-scale resilience: the cluster-wide conservation law under
// node-kill campaigns (the correctness anchor), bit-identical same-seed
// determinism of ClusterSim, config validation, placement policies, and the
// postmortem attribution of the two cluster-level miss causes
// (node_failure_rehoming, cluster_shed) over the merged trace.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/prom_lint.hpp"

using namespace rtopex;
namespace analysis = rtopex::obs::analysis;

namespace {

core::ExperimentConfig small_node_config() {
  core::ExperimentConfig node;
  node.scheduler = core::SchedulerKind::kRtOpex;
  node.workload.num_basestations = 8;
  node.workload.subframes_per_bs = 400;
  node.workload.mean_load_override = 0.35;
  node.workload.seed = 3;
  return node;
}

cluster::ClusterConfig small_cluster_config() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  return cfg;
}

}  // namespace

TEST(ClusterConfig, ValidationThrows) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterConfig cfg = small_cluster_config();

  cfg.num_nodes = 0;
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg = small_cluster_config();

  core::ExperimentConfig empty = node;
  empty.workload.num_basestations = 0;
  EXPECT_THROW(cluster::ClusterSim(empty, cfg), std::invalid_argument);

  cfg.explicit_placement = {0, 1};  // 8 basestations need 8 entries
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg.explicit_placement.assign(8, 9);  // node 9 of 4
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg = small_cluster_config();

  cfg.heartbeat_period = milliseconds(30);
  cfg.detection_timeout = milliseconds(30);  // must be strictly longer
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg = small_cluster_config();
  cfg.heartbeat_period = Duration{0};
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg = small_cluster_config();

  for (const double threshold : {0.0, -0.25, 1.5}) {
    cfg.shed_threshold = threshold;
    EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument)
        << "shed threshold " << threshold;
  }
  cfg = small_cluster_config();

  cfg.failures = {{7, milliseconds(10)}};  // node 7 of 4
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg.failures = {{0, -milliseconds(1)}};
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg = small_cluster_config();

  cfg.rebalance_enabled = true;
  cfg.rebalance_period = Duration{0};
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg = small_cluster_config();
  cfg.rebalance_enabled = true;
  cfg.hotspot_utilization = 1.25;
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);
  cfg = small_cluster_config();
  cfg.load_alpha = 0.0;
  EXPECT_THROW(cluster::ClusterSim(node, cfg), std::invalid_argument);

  // The boundary cases are valid.
  cfg = small_cluster_config();
  cfg.shed_threshold = 1.0;
  cfg.load_alpha = 1.0;
  EXPECT_NO_THROW(cluster::ClusterSim(node, cfg));
}

TEST(ClusterPlacement, PoliciesProduceValidMaps) {
  const core::ExperimentConfig node = small_node_config();
  const auto work = core::make_workload(node);
  cluster::ClusterConfig cfg = small_cluster_config();

  for (const auto policy : {cluster::PlacementPolicy::kStaticHash,
                            cluster::PlacementPolicy::kLoadAware,
                            cluster::PlacementPolicy::kHeadroomAware}) {
    cfg.placement = policy;
    const auto placement = cluster::make_placement(cfg, 8, work);
    ASSERT_EQ(placement.size(), 8u) << cluster::to_string(policy);
    for (const unsigned n : placement)
      EXPECT_LT(n, cfg.num_nodes) << cluster::to_string(policy);
    // Deterministic: same inputs, same map.
    EXPECT_EQ(placement, cluster::make_placement(cfg, 8, work));
  }

  // The greedy LPT policies never leave a node empty while another holds
  // more than its share (8 basestations over 4 nodes -> 2 each when demand
  // is comparable; at minimum no node is empty).
  cfg.placement = cluster::PlacementPolicy::kHeadroomAware;
  const auto lpt = cluster::make_placement(cfg, 8, work);
  std::vector<unsigned> counts(cfg.num_nodes, 0);
  for (const unsigned n : lpt) ++counts[n];
  for (const unsigned c : counts) EXPECT_GE(c, 1u);

  // Explicit placement is honored verbatim.
  cfg.explicit_placement = {3, 2, 1, 0, 3, 2, 1, 0};
  EXPECT_EQ(cluster::make_placement(cfg, 8, work), cfg.explicit_placement);
}

TEST(ClusterSim, HealthyRunConservesAndDispatchesEverything) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterSim sim(node, small_cluster_config());
  const auto result = sim.run();
  const cluster::ClusterMetrics& m = result.metrics;

  EXPECT_EQ(m.offered, 8u * 400u);
  EXPECT_EQ(m.dispatched, m.offered);
  EXPECT_EQ(m.shed, 0u);
  EXPECT_EQ(m.failure_lost, 0u);
  EXPECT_EQ(m.node_failovers, 0u);
  EXPECT_TRUE(m.conserved());
  ASSERT_EQ(m.nodes.size(), 4u);
  std::size_t node_total = 0;
  for (const auto& nr : m.nodes) node_total += nr.metrics.total_subframes;
  EXPECT_EQ(node_total, m.offered);
}

// The correctness anchor: kill 1..M-1 of the M nodes mid-run (staggered),
// and the cluster-wide conservation law must hold exactly every time.
TEST(ClusterSim, ConservationHoldsUnderKillCampaigns) {
  const core::ExperimentConfig node = small_node_config();
  for (unsigned kills = 1; kills <= 3; ++kills) {
    cluster::ClusterConfig cfg = small_cluster_config();
    for (unsigned k = 0; k < kills; ++k)
      cfg.failures.push_back({k, milliseconds(120 + 60 * k)});
    cluster::ClusterSim sim(node, cfg);
    const auto result = sim.run();
    const cluster::ClusterMetrics& m = result.metrics;

    EXPECT_TRUE(m.conserved()) << kills << " kills";
    EXPECT_EQ(m.node_failovers, kills);
    EXPECT_GT(m.failure_lost, 0u) << "detection window must lose arrivals";
    EXPECT_GT(m.rehomed_basestations, 0u);
    EXPECT_GT(m.rehomed_subframes, 0u);
    EXPECT_EQ(m.recovery_ms.count(), kills);
    // A re-homed basestation keeps processing: post-recovery the cluster
    // still completes the bulk of the offered load.
    EXPECT_GT(m.processed, m.offered / 2);
    for (const auto& nr : m.nodes) {
      if (nr.node < kills) {
        EXPECT_GE(nr.failed_at, 0) << "node " << nr.node;
        EXPECT_GT(nr.detected_at, nr.failed_at);
      } else {
        EXPECT_EQ(nr.failed_at, -1);
      }
    }
  }
}

// Killing every node strands the re-homing: once the last survivor dies,
// all remaining arrivals are failure-lost — and the law still holds.
TEST(ClusterSim, ConservationHoldsWhenEveryNodeDies) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterConfig cfg = small_cluster_config();
  for (unsigned n = 0; n < 4; ++n)
    cfg.failures.push_back({n, milliseconds(100 + 40 * n)});
  cluster::ClusterSim sim(node, cfg);
  const auto result = sim.run();
  const cluster::ClusterMetrics& m = result.metrics;

  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.node_failovers, 4u);
  // Everything offered after the last death is lost, never silently dropped.
  EXPECT_GT(m.failure_lost, m.offered / 4);
  EXPECT_LT(m.dispatched, m.offered);
}

TEST(ClusterSim, SameSeedRunsAreBitIdentical) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterConfig cfg = small_cluster_config();
  cfg.failures = {{1, milliseconds(150)}};
  cfg.shed_enabled = true;
  cfg.shed_threshold = 0.9;
  cfg.trace.enabled = true;
  cfg.trace.max_stored_events = 4u << 20;

  cluster::ClusterSim sim_a(node, cfg);
  cluster::ClusterSim sim_b(node, cfg);
  const auto a = sim_a.run();
  const auto b = sim_b.run();

  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.metrics.offered, b.metrics.offered);
  EXPECT_EQ(a.metrics.dispatched, b.metrics.dispatched);
  EXPECT_EQ(a.metrics.shed, b.metrics.shed);
  EXPECT_EQ(a.metrics.failure_lost, b.metrics.failure_lost);
  EXPECT_EQ(a.metrics.processed, b.metrics.processed);
  EXPECT_EQ(a.metrics.deadline_misses, b.metrics.deadline_misses);
  EXPECT_EQ(a.metrics.rehomed_subframes, b.metrics.rehomed_subframes);
  EXPECT_EQ(a.metrics.recovery_ms, b.metrics.recovery_ms);
  ASSERT_EQ(a.metrics.nodes.size(), b.metrics.nodes.size());
  for (std::size_t n = 0; n < a.metrics.nodes.size(); ++n) {
    EXPECT_EQ(a.metrics.nodes[n].metrics.total_subframes,
              b.metrics.nodes[n].metrics.total_subframes);
    EXPECT_EQ(a.metrics.nodes[n].metrics.deadline_misses,
              b.metrics.nodes[n].metrics.deadline_misses);
  }
  // The merged traces are event-for-event identical (TraceEvent ==).
  ASSERT_EQ(a.trace.events.size(), b.trace.events.size());
  EXPECT_EQ(a.trace.events, b.trace.events);
}

// Shed subframes are classified (dropped + attributed cluster_shed), never
// blocking and never silently vanished.
TEST(ClusterSim, SheddingClassifiesExactly) {
  core::ExperimentConfig node = small_node_config();
  node.workload.mean_load_override = 0.8;
  cluster::ClusterConfig cfg = small_cluster_config();
  cfg.shed_enabled = true;
  cfg.shed_threshold = 0.5;
  cfg.trace.enabled = true;
  cfg.trace.max_stored_events = 4u << 20;

  cluster::ClusterSim sim(node, cfg);
  const auto result = sim.run();
  const cluster::ClusterMetrics& m = result.metrics;

  EXPECT_GT(m.shed, 0u);
  EXPECT_TRUE(m.conserved());
  EXPECT_GE(m.dropped, m.shed);
  EXPECT_GE(m.deadline_misses, m.shed);

  const analysis::AnalysisReport report = analysis::analyze(result.trace, {});
  EXPECT_EQ(report.subframes, m.offered);
  EXPECT_EQ(report.shed, m.shed);
  EXPECT_EQ(report.cause_counts[static_cast<unsigned>(
                analysis::MissCause::kClusterShed)],
            m.shed);
  EXPECT_EQ(report.unknown(), 0u);
}

// The merged cluster trace keeps the postmortem engine working: every
// subframe reconstructs, misses match the rollup, re-homed backlog is
// attributed to node_failure_rehoming, and nothing lands in `unknown`.
TEST(ClusterSim, PostmortemAttributesRehomingOverMergedTrace) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterConfig cfg = small_cluster_config();
  cfg.failures = {{0, milliseconds(150)}};
  cfg.trace.enabled = true;
  cfg.trace.max_stored_events = 4u << 20;

  cluster::ClusterSim sim(node, cfg);
  const auto result = sim.run();
  const cluster::ClusterMetrics& m = result.metrics;
  ASSERT_TRUE(m.conserved());
  ASSERT_GT(m.rehomed_subframes, 0u);

  ASSERT_EQ(result.trace.ring_drops, 0u);
  ASSERT_EQ(result.trace.store_drops, 0u);
  const analysis::AnalysisReport report = analysis::analyze(result.trace, {});
  EXPECT_EQ(report.subframes, m.offered);
  EXPECT_EQ(report.misses, m.deadline_misses);
  EXPECT_EQ(report.lost, m.lost);
  EXPECT_EQ(report.rehomed, m.rehomed_subframes);
  EXPECT_EQ(report.unknown(), 0u);
}

// Forced hotspot: a skewed explicit placement plus a low hotspot threshold
// must trigger at least one EWMA-driven move, without breaking the law.
TEST(ClusterSim, RebalanceMovesShrinkTheHotspot) {
  core::ExperimentConfig node = small_node_config();
  // Heterogeneous demand: the hot node's residents run 20 MHz, the cool
  // node's 5 MHz (4x fewer PRBs, far cheaper subframes).
  node.workload.num_basestations = 4;
  node.workload.mean_load_override = 0.5;
  node.workload.per_bs_bandwidth = {
      phy::Bandwidth::kMHz20, phy::Bandwidth::kMHz20, phy::Bandwidth::kMHz5,
      phy::Bandwidth::kMHz5};

  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.explicit_placement = {0, 0, 1, 1};
  cfg.rebalance_enabled = true;
  cfg.rebalance_period = milliseconds(50);
  cfg.hotspot_utilization = 0.1;

  cluster::ClusterSim sim(node, cfg);
  const auto result = sim.run();
  const cluster::ClusterMetrics& m = result.metrics;
  EXPECT_GT(m.rebalance_moves, 0u);
  EXPECT_TRUE(m.conserved());
  // Rebalancing is not failure re-homing: no failovers, no requeues.
  EXPECT_EQ(m.node_failovers, 0u);
  EXPECT_EQ(m.rehomed_subframes, 0u);
}

// Conservation and re-homing hold for every node scheduler kind.
TEST(ClusterSim, AllSchedulerKindsSurviveAKill) {
  for (const auto kind :
       {core::SchedulerKind::kPartitioned, core::SchedulerKind::kGlobal,
        core::SchedulerKind::kRtOpex}) {
    core::ExperimentConfig node = small_node_config();
    node.scheduler = kind;
    cluster::ClusterConfig cfg = small_cluster_config();
    cfg.failures = {{2, milliseconds(150)}};
    cluster::ClusterSim sim(node, cfg);
    const auto result = sim.run();
    EXPECT_TRUE(result.metrics.conserved()) << core::to_string(kind);
    EXPECT_EQ(result.metrics.node_failovers, 1u) << core::to_string(kind);
    EXPECT_GT(result.metrics.rehomed_subframes, 0u) << core::to_string(kind);
  }
}

// --- Live health engine over ClusterSim -----------------------------------

namespace {

cluster::ClusterConfig health_cluster_config() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.health.enabled = true;
  return cfg;
}

std::vector<obs::TraceEvent> alert_events_of(const obs::TraceStore& trace) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& ev : trace.events)
    if (ev.kind == obs::EventKind::kAlert ||
        ev.kind == obs::EventKind::kAlertClear)
      out.push_back(ev);
  return out;
}

}  // namespace

// The headline behaviour: a fail-stopped node raises a page-severity
// burn-rate alert within one detection window of the kill, the alert is
// scoped to the dead node, and it clears after re-homing restores service.
TEST(ClusterHealth, KillPagesWithinDetectionWindowAndClearsAfterRehoming) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterConfig cfg = health_cluster_config();
  cfg.failures = {{1, milliseconds(150)}};
  cluster::ClusterSim sim(node, cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.metrics.conserved());
  ASSERT_FALSE(result.alerts.empty());

  const obs::health::Alert* page = nullptr;
  for (const obs::health::Alert& a : result.alerts)
    if (a.severity == obs::health::Severity::kPage &&
        a.scope == obs::health::ScopeKind::kNode && a.scope_id == 1)
      page = &a;
  ASSERT_NE(page, nullptr) << "dead node never paged";
  EXPECT_EQ(page->rule, obs::health::Rule::kFastBurn);
  // The detection-window losses are stamped at radio time, so the page
  // lands between the kill and one detection timeout after it.
  EXPECT_GE(page->fired_at, milliseconds(150));
  EXPECT_LE(page->fired_at, milliseconds(150) + cfg.detection_timeout);
  // Re-homing restores service; the hysteresis clear follows.
  EXPECT_FALSE(page->active());
  EXPECT_GT(page->cleared_at, page->fired_at);

  // Alerts ride the merged trace on the dedicated health track.
  EXPECT_EQ(result.health_track, result.cluster_track + 1);
  const auto events = alert_events_of(result.trace);
  std::size_t fired = 0;
  for (const obs::TraceEvent& ev : events) {
    EXPECT_EQ(ev.core, result.health_track);
    if (ev.kind == obs::EventKind::kAlert) ++fired;
  }
  EXPECT_EQ(fired, result.alerts.size());

  // The postmortem engine reconstructs the same windows from the merged
  // trace and links the detection-window casualties to the node page.
  const analysis::AnalysisReport report = analysis::analyze(result.trace, {});
  EXPECT_EQ(report.alerts.size(), result.alerts.size());
  bool linked = false;
  for (const analysis::AlertWindow& w : report.alerts)
    if (w.scope_kind == 1 && w.scope_id == 1 && w.severity == 2 &&
        w.misses_in_window > 0)
      linked = true;
  EXPECT_TRUE(linked) << "node page window linked no misses";
}

// Same-seed kill campaigns produce bit-identical alert streams: the whole
// chain (virtual clocks -> trace merge -> scan -> burn evaluation) is
// deterministic, so paging decisions are replayable evidence.
TEST(ClusterHealth, SameSeedAlertStreamsAreBitIdentical) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterConfig cfg = health_cluster_config();
  cfg.failures = {{0, milliseconds(120)}, {2, milliseconds(200)}};
  cluster::ClusterSim sim_a(node, cfg);
  cluster::ClusterSim sim_b(node, cfg);
  const auto a = sim_a.run();
  const auto b = sim_b.run();

  ASSERT_FALSE(a.alerts.empty());
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_EQ(alert_events_of(a.trace), alert_events_of(b.trace));
}

// A clean same-shape run raises nothing: zero alerts, perfect score.
TEST(ClusterHealth, CleanRunRaisesNoAlerts) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterSim sim(node, health_cluster_config());
  const auto result = sim.run();
  EXPECT_TRUE(result.metrics.conserved());
  EXPECT_TRUE(result.alerts.empty()) << obs::health::describe(
      result.alerts.front());
  EXPECT_TRUE(alert_events_of(result.trace).empty());
  EXPECT_EQ(result.health.cluster.health_score, 100.0);
  ASSERT_EQ(result.health.nodes.size(), 4u);
  for (const obs::health::ScopeHealth& h : result.health.nodes)
    EXPECT_EQ(h.health_score, 100.0);
}

// The federated fleet snapshot: per-node series labelled with node=...,
// fleet-level merged histograms, health series — and the whole exposition
// passes the strict format linter.
TEST(ClusterHealth, FederatedSnapshotLintsClean) {
  const core::ExperimentConfig node = small_node_config();
  cluster::ClusterConfig cfg = health_cluster_config();
  cfg.failures = {{1, milliseconds(150)}};
  cluster::ClusterSim sim(node, cfg);
  const auto result = sim.run();

  obs::MetricsRegistry reg;
  cluster::fill_federated_registry(result, reg);
  const std::string text = reg.render();
  EXPECT_NE(text.find("rtopex_fleet_processing_time_us"), std::string::npos);
  EXPECT_NE(text.find("node=\"1\""), std::string::npos);
  EXPECT_NE(text.find("rtopex_health_score{scope=\"cluster\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("rtopex_health_alerts_fired_total{rule=\"fast_burn\"}"),
      std::string::npos);
  const std::vector<std::string> problems = obs::lint_prometheus_text(text);
  EXPECT_TRUE(problems.empty())
      << problems.size() << " lint errors, first: " << problems.front();
}
