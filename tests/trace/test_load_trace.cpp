#include <gtest/gtest.h>

#include <cstdio>

#include "common/stats.hpp"
#include "trace/load_trace.hpp"

namespace rtopex::trace {
namespace {

TEST(LoadTraceTest, LoadsStayNormalized) {
  const auto trace = generate_load_trace({}, 50000, 1);
  for (const double l : trace.values()) {
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
}

TEST(LoadTraceTest, MeanTracksParameter) {
  BasestationLoadParams p;
  p.mean = 0.6;
  p.burst_prob = 0.0;
  const auto trace = generate_load_trace(p, 100000, 2);
  RunningStats s;
  for (const double l : trace.values()) s.add(l);
  EXPECT_NEAR(s.mean(), 0.6, 0.03);
}

TEST(LoadTraceTest, AutocorrelationMatchesParameter) {
  BasestationLoadParams p;
  p.mean = 0.5;
  p.stddev = 0.15;
  p.correlation = 0.8;
  p.burst_prob = 0.0;
  const auto trace = generate_load_trace(p, 200000, 3);
  const auto& x = trace.values();
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    num += (x[i] - mean) * (x[i + 1] - mean);
    den += (x[i] - mean) * (x[i] - mean);
  }
  EXPECT_NEAR(num / den, 0.8, 0.05);
}

TEST(LoadTraceTest, BurstsRaiseHighQuantiles) {
  BasestationLoadParams calm;
  calm.mean = 0.3;
  calm.burst_prob = 0.0;
  BasestationLoadParams bursty = calm;
  bursty.burst_prob = 0.2;
  bursty.burst_mean = 0.5;
  const auto a = generate_load_trace(calm, 50000, 4);
  const auto b = generate_load_trace(bursty, 50000, 4);
  EXPECT_GT(quantile(b.values(), 0.99), quantile(a.values(), 0.99) + 0.1);
}

TEST(LoadTraceTest, DeterministicPerSeed) {
  const auto a = generate_load_trace({}, 1000, 5);
  const auto b = generate_load_trace({}, 1000, 5);
  EXPECT_EQ(a.values(), b.values());
  const auto c = generate_load_trace({}, 1000, 6);
  EXPECT_NE(a.values(), c.values());
}

TEST(LoadTraceTest, PresetBasestationsDiffer) {
  const auto params = metropolitan_preset(4);
  ASSERT_EQ(params.size(), 4u);
  // Distinct medians, echoing the paper's Fig. 14 separated CDFs.
  std::vector<double> medians;
  for (std::size_t b = 0; b < 4; ++b) {
    const auto t = generate_load_trace(params[b], 30000, 100 + b);
    medians.push_back(quantile(t.values(), 0.5));
  }
  for (std::size_t i = 1; i < medians.size(); ++i)
    EXPECT_LT(medians[i], medians[i - 1] - 0.03);
  EXPECT_THROW(metropolitan_preset(9), std::invalid_argument);
}

TEST(LoadTraceTest, McsMappingCoversFullRange) {
  EXPECT_EQ(mcs_from_load(0.0), 0u);
  EXPECT_EQ(mcs_from_load(1.0), 27u);
  EXPECT_EQ(mcs_from_load(0.5), 14u);
  EXPECT_EQ(mcs_from_load(-1.0), 0u);  // clamped
  EXPECT_EQ(mcs_from_load(2.0), 27u);  // clamped
}

TEST(LoadTraceTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/traces.csv";
  const std::vector<LoadTrace> original = {
      generate_load_trace({}, 200, 7),
      generate_load_trace({}, 200, 8),
  };
  write_traces_csv(path, original);
  const auto loaded = read_traces_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  for (std::size_t b = 0; b < 2; ++b) {
    ASSERT_EQ(loaded[b].size(), 200u);
    for (std::size_t i = 0; i < 200; ++i)
      EXPECT_NEAR(loaded[b].load(i), original[b].load(i), 1e-9);
  }
  std::remove(path.c_str());
}

TEST(LoadTraceTest, TraceIndexWrapsAround) {
  const auto t = generate_load_trace({}, 100, 9);
  EXPECT_EQ(t.load(250), t.load(50));
}

TEST(LoadTraceTest, RejectsBadParameters) {
  EXPECT_THROW(generate_load_trace({}, 0, 1), std::invalid_argument);
  BasestationLoadParams p;
  p.correlation = 1.0;
  EXPECT_THROW(generate_load_trace(p, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::trace
