#include <gtest/gtest.h>

#include "core/provisioning.hpp"

namespace rtopex::core {
namespace {

ProvisioningQuery small_query(SchedulerKind kind) {
  ProvisioningQuery q;
  q.base.workload.num_basestations = 4;
  q.base.workload.subframes_per_bs = 4000;
  q.base.workload.seed = 3;
  q.base.scheduler = kind;
  q.max_miss_rate = 1e-2;
  return q;
}

TEST(ProvisioningTest, RtOpexSustainsLargerTransportBudget) {
  const Duration part = max_supported_rtt_half(
      small_query(SchedulerKind::kPartitioned));
  const Duration opex =
      max_supported_rtt_half(small_query(SchedulerKind::kRtOpex));
  // Both must be meaningful, and RT-OPEX strictly dominates.
  EXPECT_GT(part, microseconds(100));
  EXPECT_GT(opex, part);
}

TEST(ProvisioningTest, BoundaryIsConsistentWithDirectEvaluation) {
  auto q = small_query(SchedulerKind::kPartitioned);
  const Duration budget = max_supported_rtt_half(q);
  // At the reported boundary the ceiling holds...
  q.base.rtt_half = budget;
  EXPECT_LE(run_experiment(q.base).metrics.miss_rate(), q.max_miss_rate);
  // ...and well past it, it does not.
  q.base.rtt_half = budget + microseconds(200);
  EXPECT_GT(run_experiment(q.base).metrics.miss_rate(), q.max_miss_rate);
}

TEST(ProvisioningTest, LoadSearchOrdersSchedulers) {
  auto part = small_query(SchedulerKind::kPartitioned);
  auto opex = small_query(SchedulerKind::kRtOpex);
  part.base.rtt_half = opex.base.rtt_half = microseconds(500);
  const double l_part = max_supported_load(part);
  const double l_opex = max_supported_load(opex);
  EXPECT_GT(l_part, 0.1);
  EXPECT_GT(l_opex, l_part);
  EXPECT_LE(l_opex, 1.0);
}

TEST(ProvisioningTest, RejectsBadRanges) {
  const auto q = small_query(SchedulerKind::kPartitioned);
  EXPECT_THROW(
      max_supported_rtt_half(q, microseconds(500), microseconds(100)),
      std::invalid_argument);
  EXPECT_THROW(max_supported_load(q, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(max_supported_load(q, 0.5, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::core
