#include <gtest/gtest.h>

#include <cstdio>

#include "common/csv.hpp"
#include "core/results_io.hpp"

namespace rtopex::core {
namespace {

class ResultsIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/rtopex_results.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(ResultsIoTest, SweepRoundTrip) {
  ExperimentConfig cfg;
  cfg.workload.num_basestations = 2;
  cfg.workload.subframes_per_bs = 500;
  std::vector<SweepPoint> points;
  for (const int rtt : {400, 600}) {
    cfg.rtt_half = microseconds(rtt);
    for (const auto kind :
         {SchedulerKind::kPartitioned, SchedulerKind::kRtOpex}) {
      cfg.scheduler = kind;
      points.push_back({static_cast<double>(rtt), run_experiment(cfg)});
    }
  }
  write_sweep_csv(path_, points);

  const CsvTable table = read_csv(path_);
  ASSERT_EQ(table.header.size(), 11u);
  ASSERT_EQ(table.rows.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(table.rows[i][0], points[i].x);
    EXPECT_EQ(table.rows[i][3], 1000.0);  // total subframes
    EXPECT_NEAR(table.rows[i][5], points[i].result.metrics.miss_rate(), 1e-9);
  }
  // Scheduler ids: partitioned 0, rt-opex 2, alternating.
  EXPECT_EQ(table.rows[0][1], 0.0);
  EXPECT_EQ(table.rows[1][1], 2.0);
}

TEST_F(ResultsIoTest, DistributionQuantiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(i);
  write_distribution_csv(path_, samples, 10);
  const CsvTable table = read_csv(path_);
  ASSERT_EQ(table.rows.size(), 11u);
  EXPECT_DOUBLE_EQ(table.rows.front()[1], 1.0);
  EXPECT_DOUBLE_EQ(table.rows.back()[1], 1000.0);
  EXPECT_NEAR(table.rows[5][1], 500.5, 1.0);  // median
}

TEST_F(ResultsIoTest, RejectsDegenerateInput) {
  EXPECT_THROW(write_distribution_csv(path_, std::vector<double>{}, 10),
               std::invalid_argument);
  EXPECT_THROW(write_distribution_csv(path_, std::vector<double>{1.0}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::core
