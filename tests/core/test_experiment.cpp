#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace rtopex::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 2000;
  cfg.workload.seed = 21;
  cfg.rtt_half = microseconds(500);
  return cfg;
}

TEST(ExperimentTest, RunsAllSchedulerKinds) {
  auto cfg = small_config();
  for (const auto kind : {SchedulerKind::kPartitioned, SchedulerKind::kGlobal,
                          SchedulerKind::kRtOpex}) {
    cfg.scheduler = kind;
    const auto result = run_experiment(cfg);
    EXPECT_EQ(result.metrics.total_subframes, 8000u);
    EXPECT_GT(result.num_cores, 0u);
    EXPECT_STREQ(result.scheduler_name.c_str(), to_string(kind));
  }
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  auto cfg = small_config();
  cfg.scheduler = SchedulerKind::kRtOpex;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(a.metrics.deadline_misses, b.metrics.deadline_misses);
  EXPECT_EQ(a.metrics.fft_subtasks_migrated, b.metrics.fft_subtasks_migrated);
}

TEST(ExperimentTest, SharedWorkloadAllowsPairedComparison) {
  auto cfg = small_config();
  const auto work = make_workload(cfg);
  cfg.scheduler = SchedulerKind::kPartitioned;
  const auto p1 = run_scheduler(cfg, work);
  const auto p2 = run_scheduler(cfg, work);
  EXPECT_EQ(p1.metrics.deadline_misses, p2.metrics.deadline_misses);
}

TEST(ExperimentTest, StochasticTransportCentersOnRttHalf) {
  auto cfg = small_config();
  cfg.stochastic_transport = true;
  const auto work = make_workload(cfg);
  double mean_delay = 0.0;
  for (const auto& w : work)
    mean_delay += to_us(w.arrival - w.radio_time);
  mean_delay /= static_cast<double>(work.size());
  EXPECT_NEAR(mean_delay, 500.0, 30.0);
}

TEST(ExperimentTest, RtOpexConfigRttSyncedFromTopLevel) {
  auto cfg = small_config();
  cfg.scheduler = SchedulerKind::kRtOpex;
  cfg.rtt_half = microseconds(700);
  cfg.rtopex.rtt_half = microseconds(400);  // must be overridden
  const auto result = run_experiment(cfg);
  // cores_per_bs for 700us budget is 2 -> 8 cores.
  EXPECT_EQ(result.num_cores, 8u);
  EXPECT_GT(result.metrics.total_subframes, 0u);
}

}  // namespace
}  // namespace rtopex::core
