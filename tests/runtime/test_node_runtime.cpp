// Functional tests of the real-thread runtime: every subframe decoded
// correctly under all three modes, migration bookkeeping consistent, no
// lost/duplicated subframes. Timing is intentionally not asserted — these
// tests run on arbitrary (possibly single-core) hosts, so the subframe
// period is stretched far beyond real time.
#include <gtest/gtest.h>

#include <set>

#include "runtime/node_runtime.hpp"
#include "support/sanitizer_pacing.hpp"

namespace rtopex::runtime {
namespace {

RuntimeConfig small_config(RuntimeMode mode) {
  RuntimeConfig cfg;
  cfg.mode = mode;
  cfg.num_basestations = 2;
  cfg.cores_per_bs = 2;
  cfg.global_cores = 4;
  cfg.subframes_per_bs = 8;
  // Generous pacing so even a loaded single-core CI host keeps up, scaled
  // further when sanitizer instrumentation slows the PHY.
  cfg.subframe_period = milliseconds(60) * test::pacing_scale();
  cfg.deadline_budget = milliseconds(120) * test::pacing_scale();
  cfg.rtt_half = microseconds(500);
  cfg.mcs_cycle = {4, 16};
  cfg.phy.num_antennas = 2;
  cfg.phy.bandwidth = phy::Bandwidth::kMHz5;  // keep tests fast
  cfg.seed = 7;
  return cfg;
}

void check_complete(const RuntimeReport& report, const RuntimeConfig& cfg) {
  EXPECT_EQ(report.records.size(),
            static_cast<std::size_t>(cfg.num_basestations) *
                cfg.subframes_per_bs);
  std::set<std::pair<unsigned, std::uint32_t>> seen;
  for (const auto& r : report.records) {
    EXPECT_TRUE(seen.insert({r.bs, r.index}).second)
        << "duplicate subframe bs=" << r.bs << " idx=" << r.index;
    EXPECT_TRUE(r.crc_ok) << "decode failed bs=" << r.bs << " idx=" << r.index
                          << " mcs=" << r.mcs;
    EXPECT_GE(r.completion, r.start);
    EXPECT_GE(r.start, r.arrival);
  }
  EXPECT_EQ(report.crc_failures, 0u);
}

TEST(NodeRuntimeTest, PartitionedDecodesEverything) {
  const auto cfg = small_config(RuntimeMode::kPartitioned);
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_complete(report, cfg);
  EXPECT_EQ(report.migrations, 0u);
}

TEST(NodeRuntimeTest, GlobalDecodesEverything) {
  const auto cfg = small_config(RuntimeMode::kGlobal);
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_complete(report, cfg);
}

TEST(NodeRuntimeTest, RtOpexDecodesEverythingWithMigration) {
  auto cfg = small_config(RuntimeMode::kRtOpex);
  cfg.mcs_cycle = {27, 2};  // multi-code-block subframes: migratable decode
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_complete(report, cfg);
  // Migration counters are never negative and recoveries never exceed
  // migrations-planned + hosting progress; at this pacing idle windows are
  // plentiful, so some migration is expected on multi-core hosts but not
  // guaranteed on single-core ones — assert consistency only.
  std::size_t migrated_in_records = 0;
  for (const auto& r : report.records)
    migrated_in_records += r.timing.fft_migrated + r.timing.decode_migrated;
  EXPECT_EQ(report.migrations, migrated_in_records);
}

TEST(NodeRuntimeTest, SlackCheckDropsUnderImpossibleBudget) {
  auto cfg = small_config(RuntimeMode::kPartitioned);
  // A 1 ms end-to-end budget cannot fit this host's multi-millisecond
  // decode; the slack check must drop (not hang or crash), and dropped
  // subframes must not count as CRC failures.
  cfg.deadline_budget = milliseconds(1);
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  EXPECT_EQ(report.records.size(),
            static_cast<std::size_t>(cfg.num_basestations) *
                cfg.subframes_per_bs);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_EQ(report.deadline_misses, report.records.size());
  EXPECT_EQ(report.crc_failures, 0u);
  for (const auto& r : report.records)
    if (r.dropped) EXPECT_TRUE(r.deadline_missed);
}

TEST(NodeRuntimeTest, EnforcementOffOnlyRecordsMisses) {
  auto cfg = small_config(RuntimeMode::kPartitioned);
  cfg.deadline_budget = milliseconds(1);
  cfg.enforce_deadlines = false;
  cfg.subframes_per_bs = 4;
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_GT(report.deadline_misses, 0u);
  EXPECT_EQ(report.crc_failures, 0u);  // everything still decodes
}

TEST(NodeRuntimeTest, ThroughputBatchedDecodesEverything) {
  // Saturating arrival (period far below this host's decode time) with
  // enforcement off: jobs queue up, so batched workers drain several per
  // pass and fuse their code blocks into cross-subframe SoA batches. The
  // conservation/CRC contract must hold exactly as in latency mode.
  for (const auto mode : {RuntimeMode::kGlobal, RuntimeMode::kPartitioned}) {
    auto cfg = small_config(mode);
    cfg.subframe_period = microseconds(200);
    cfg.deadline_budget = milliseconds(2);
    cfg.rtt_half = microseconds(50);
    cfg.enforce_deadlines = false;
    cfg.subframes_per_bs = 6;
    cfg.throughput.batch = 8;
    cfg.throughput.numa_pools = true;
    NodeRuntime runtime(cfg);
    const auto report = runtime.run();
    check_complete(report, cfg);
    // Every record that claims batching is accounted; with arrivals this
    // far ahead of service, at least some passes must have fused >= 2
    // subframes (the queues are necessarily non-empty after the first
    // decode completes).
    EXPECT_GT(report.batched_subframes, 0u)
        << "mode " << static_cast<int>(mode);
    EXPECT_LE(report.batched_subframes, report.records.size());
  }
}

TEST(NodeRuntimeTest, ThroughputBatchOfOneMatchesDefaultContract) {
  // batch=1 (the default) plus pools/pinning knobs must behave exactly like
  // the plain runtime: everything decodes, nothing reports as batched.
  auto cfg = small_config(RuntimeMode::kGlobal);
  cfg.throughput.batch = 1;
  cfg.throughput.numa_pools = true;
  cfg.throughput.pin_workers = true;  // best-effort; may silently no-op
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_complete(report, cfg);
  EXPECT_EQ(report.batched_subframes, 0u);
}

TEST(NodeRuntimeTest, RejectsBadThroughputConfig) {
  // batch = 0 would make workers drain nothing and spin forever.
  auto cfg = small_config(RuntimeMode::kGlobal);
  cfg.throughput.batch = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  // Above the cross-subframe decoder's hard cap.
  cfg = small_config(RuntimeMode::kGlobal);
  cfg.throughput.batch = 17;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  // RT-OPEX migrates decode per-subtask — the granularity batching fuses
  // away — so batching is rejected there rather than silently ignored.
  cfg = small_config(RuntimeMode::kRtOpex);
  cfg.throughput.batch = 2;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kRtOpex);
  cfg.throughput.batch = 1;  // explicit batch-of-1 stays allowed
  EXPECT_NO_THROW(NodeRuntime{cfg});
  // An explicit pin set must cover every worker.
  cfg = small_config(RuntimeMode::kGlobal);  // global_cores = 4
  cfg.throughput.worker_cores = {0, 1};
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
}

TEST(NodeRuntimeTest, RejectsEmptyConfig) {
  RuntimeConfig cfg = small_config(RuntimeMode::kPartitioned);
  cfg.mcs_cycle.clear();
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kPartitioned);
  cfg.mcs_cycle = {99};
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
}

TEST(NodeRuntimeTest, RejectsZeroCores) {
  // Zero workers would leave pushed jobs queued forever; the constructor
  // must throw instead of letting run() hang on the drain loop.
  auto cfg = small_config(RuntimeMode::kPartitioned);
  cfg.cores_per_bs = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kRtOpex);
  cfg.cores_per_bs = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kGlobal);
  cfg.global_cores = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kPartitioned);
  cfg.num_basestations = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
}

TEST(NodeRuntimeTest, RejectsZeroSubframesAndBadPacing) {
  auto cfg = small_config(RuntimeMode::kPartitioned);
  cfg.subframes_per_bs = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kPartitioned);
  cfg.subframe_period = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kPartitioned);
  cfg.deadline_budget = -milliseconds(1);
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
}

TEST(NodeRuntimeTest, RejectsRttConsumingWholeBudget) {
  // Arrival at/after the deadline means every subframe is dead on arrival —
  // a configuration error that must throw rather than spin a worker.
  auto cfg = small_config(RuntimeMode::kPartitioned);
  cfg.rtt_half = cfg.deadline_budget;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kPartitioned);
  cfg.rtt_half = cfg.deadline_budget + microseconds(1);
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg = small_config(RuntimeMode::kPartitioned);
  cfg.rtt_half = -1;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::runtime
