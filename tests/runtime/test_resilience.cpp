// Degraded-mode resilience layer, runtime side: watchdog failover with
// deterministic core kills, fronthaul loss/late-arrival classification,
// graceful degradation of the turbo-iteration cap, and the hardened
// completion-flag wait. Every test checks the conservation law
//   processed + dropped + late + lost == offered
// alongside its specific behaviour; none asserts wall-clock timing.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "runtime/fault_injection.hpp"
#include "runtime/node_runtime.hpp"
#include "support/sanitizer_pacing.hpp"

namespace rtopex::runtime {
namespace {

RuntimeConfig resilience_config(RuntimeMode mode) {
  RuntimeConfig cfg;
  cfg.mode = mode;
  cfg.num_basestations = 2;
  cfg.cores_per_bs = 2;
  cfg.subframes_per_bs = 8;
  cfg.subframe_period = milliseconds(60) * test::pacing_scale();
  cfg.deadline_budget = milliseconds(120) * test::pacing_scale();
  cfg.rtt_half = microseconds(500);
  cfg.mcs_cycle = {4, 16};
  cfg.phy.num_antennas = 2;
  cfg.phy.bandwidth = phy::Bandwidth::kMHz5;
  cfg.seed = 7;
  return cfg;
}

/// Terminal dispositions partition the offered subframes, and the report's
/// aggregate counters match a recount of the records.
void check_conservation(const RuntimeReport& report, const RuntimeConfig& cfg) {
  const std::size_t offered =
      static_cast<std::size_t>(cfg.num_basestations) * cfg.subframes_per_bs;
  EXPECT_EQ(report.records.size(), offered);
  std::size_t processed = 0, dropped = 0, late = 0, lost = 0;
  for (const auto& r : report.records) {
    const int dispositions = static_cast<int>(r.lost) +
                             static_cast<int>(r.late_arrival) +
                             static_cast<int>(r.dropped);
    EXPECT_LE(dispositions, 1) << "bs=" << r.bs << " idx=" << r.index;
    if (r.lost)
      ++lost;
    else if (r.late_arrival)
      ++late;
    else if (r.dropped)
      ++dropped;
    else
      ++processed;
  }
  EXPECT_EQ(processed + dropped + late + lost, offered);
  EXPECT_EQ(report.dropped, dropped);
  EXPECT_EQ(report.resilience.lost_subframes, lost);
  EXPECT_EQ(report.resilience.late_arrivals, late);
  std::size_t hist = 0;
  for (const std::size_t h : report.resilience.degrade_histogram) hist += h;
  EXPECT_EQ(hist, processed)
      << "every processed subframe lands in exactly one degrade bucket";
}

// Acceptance-criterion test: kill one core mid-run through the injection
// hook; the watchdog must declare it dead, repartition its slots and requeue
// its stranded jobs, and the surviving basestation must be untouched.
TEST(ResilienceRuntimeTest, DeterministicFailover) {
  auto cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.resilience.enable_watchdog = true;
  cfg.resilience.watchdog_timeout = cfg.subframe_period;

  // Arm at tick 2, then worker 0 (basestation 0, even indices) parks at its
  // next between-jobs kill poll.
  auto armed = std::make_shared<std::atomic<bool>>(false);
  fault::Hooks hooks;
  hooks.transport_jitter = [armed](unsigned, std::uint32_t index) {
    if (index >= 2) armed->store(true, std::memory_order_release);
    return Duration{0};
  };
  hooks.kill_worker = [armed](std::size_t worker) {
    return worker == 0 && armed->load(std::memory_order_acquire);
  };
  fault::ScopedInjection inject(std::move(hooks));

  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);

  const auto& res = report.resilience;
  EXPECT_EQ(res.failovers, 1u);
  EXPECT_EQ(res.repartitions, 1u);
  EXPECT_GE(res.requeued_jobs, 1u);
  EXPECT_EQ(res.lost_subframes, 0u);
  EXPECT_EQ(report.crc_failures, 0u);
  for (const auto& r : report.records) {
    // Nothing is lost to the failure: every subframe of both basestations
    // terminates, and everything that was processed decoded correctly.
    EXPECT_FALSE(r.lost);
    if (!r.dropped && !r.late_arrival) EXPECT_TRUE(r.crc_ok);
    // The surviving basestation never sees the failure at all.
    if (r.bs == 1) {
      EXPECT_FALSE(r.dropped);
      EXPECT_TRUE(r.crc_ok);
    }
  }
}

TEST(ResilienceRuntimeTest, RtOpexFailoverConserves) {
  auto cfg = resilience_config(RuntimeMode::kRtOpex);
  cfg.resilience.enable_watchdog = true;
  cfg.resilience.watchdog_timeout = cfg.subframe_period;

  auto armed = std::make_shared<std::atomic<bool>>(false);
  fault::Hooks hooks;
  hooks.transport_jitter = [armed](unsigned, std::uint32_t index) {
    if (index >= 2) armed->store(true, std::memory_order_release);
    return Duration{0};
  };
  hooks.kill_worker = [armed](std::size_t worker) {
    return worker == 0 && armed->load(std::memory_order_acquire);
  };
  fault::ScopedInjection inject(std::move(hooks));

  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
  EXPECT_EQ(report.resilience.failovers, 1u);
  EXPECT_GE(report.resilience.repartitions, 1u);
  EXPECT_EQ(report.crc_failures, 0u);
  for (const auto& r : report.records)
    if (r.bs == 1) EXPECT_TRUE(r.crc_ok);
}

TEST(ResilienceRuntimeTest, TotalFronthaulLossStillTerminates) {
  auto cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.subframes_per_bs = 4;
  cfg.subframe_period = milliseconds(10);
  cfg.deadline_budget = milliseconds(20);
  cfg.resilience.fronthaul_faults.loss_prob = 1.0;

  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
  // Every subframe is lost before reaching the node: the reserved slots are
  // freed (no worker ever blocks), nothing is decoded, nothing missed.
  EXPECT_EQ(report.resilience.lost_subframes, report.records.size());
  EXPECT_EQ(report.deadline_misses, 0u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.crc_failures, 0u);
  for (const auto& r : report.records) EXPECT_TRUE(r.lost);
}

TEST(ResilienceRuntimeTest, PartialFronthaulLossConserves) {
  auto cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.mcs_cycle = {4};
  cfg.subframes_per_bs = 10;
  cfg.subframe_period = milliseconds(20) * test::pacing_scale();
  cfg.deadline_budget = milliseconds(40) * test::pacing_scale();
  cfg.resilience.fronthaul_faults.loss_prob = 0.35;

  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
  // The fault stream is seeded independently of the payload stream, so the
  // loss pattern is fixed for this seed: some but not all subframes vanish,
  // and every survivor decodes normally.
  EXPECT_GE(report.resilience.lost_subframes, 1u);
  EXPECT_LT(report.resilience.lost_subframes, report.records.size());
  EXPECT_EQ(report.crc_failures, 0u);
  for (const auto& r : report.records)
    if (!r.lost && !r.dropped) EXPECT_TRUE(r.crc_ok);
}

TEST(ResilienceRuntimeTest, LateArrivalsClassifiedEvenWithoutEnforcement) {
  auto cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.num_basestations = 1;
  cfg.subframes_per_bs = 6;
  cfg.subframe_period = milliseconds(40) * test::pacing_scale();
  cfg.deadline_budget = milliseconds(80) * test::pacing_scale();
  cfg.enforce_deadlines = false;
  auto& f = cfg.resilience.fronthaul_faults;
  f.late_prob = 1.0;
  f.late_delay_mean = 20 * cfg.deadline_budget;
  f.late_delay_max = 40 * cfg.deadline_budget;

  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
  // With enforcement off nothing is dropped, but a delivery that arrives
  // past its deadline is still classified (satellite fix: the asymmetry
  // where `enforce_deadlines = false` skipped classification is gone).
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_GE(report.resilience.late_arrivals, 1u);
  for (const auto& r : report.records) {
    if (r.late_arrival) {
      EXPECT_TRUE(r.deadline_missed);
      EXPECT_FALSE(r.crc_ok);  // never decoded
      EXPECT_GT(r.arrival, r.radio_time + cfg.deadline_budget);
    } else {
      EXPECT_TRUE(r.crc_ok);
    }
  }
  EXPECT_GE(report.deadline_misses, report.resilience.late_arrivals);
}

// Graceful degradation: a single subframe whose full-quality estimate
// (initial EWMA seeds, deterministic for the first job) cannot fit the
// budget, but a shrunk iteration cap can. Without degradation the slack
// check must drop it; with degradation it must be admitted at reduced
// quality instead.
TEST(ResilienceRuntimeTest, DegradationAdmitsWhatDroppingRejects) {
  RuntimeConfig cfg;
  cfg.mode = RuntimeMode::kPartitioned;
  cfg.num_basestations = 1;
  cfg.cores_per_bs = 1;
  cfg.subframes_per_bs = 1;
  cfg.subframe_period = milliseconds(5);
  // Planning estimates are seeded 10x the defaults so the admission margins
  // dwarf scheduling noise: 14 FFT subtasks x 0.5 ms + 5 ms demod = 12 ms
  // base, 11 code blocks x 5 ms = 55 ms full decode at Lm = 8, 67 ms total.
  // The admission check runs at clock.now() >= arrival (4 ms), so the
  // full-quality estimate always overshoots the 70 ms budget (it would need
  // now <= 3 ms) and the drop/degrade decision is deterministic, while the
  // minimal cap (12 ms + 6.9 ms) stays admissible for ~47 ms of worker
  // wake + job-setup latency past arrival — the estimates only steer
  // admission; the decode itself runs at real PHY speed.
  cfg.initial_fft_subtask_est = microseconds(500);
  cfg.initial_decode_subtask_est = microseconds(5000);
  cfg.initial_demod_est = microseconds(5000);
  cfg.deadline_budget = microseconds(70000);
  cfg.rtt_half = microseconds(4000);
  cfg.mcs_cycle = {27};
  cfg.phy.bandwidth = phy::Bandwidth::kMHz20;
  cfg.phy.num_antennas = 1;
  cfg.phy.max_iterations = 8;
  cfg.seed = 3;

  {
    NodeRuntime runtime(cfg);  // degradation off: the subframe is dropped
    const auto report = runtime.run();
    ASSERT_EQ(report.records.size(), 1u);
    EXPECT_TRUE(report.records[0].dropped);
    EXPECT_EQ(report.resilience.degraded, 0u);
  }

  cfg.resilience.enable_degradation = true;
  cfg.resilience.min_turbo_iterations = 1;
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
  ASSERT_EQ(report.records.size(), 1u);
  const auto& r = report.records[0];
  EXPECT_FALSE(r.dropped);
  EXPECT_NE(r.degrade, DegradeLevel::kNone);
  EXPECT_LT(r.iterations, cfg.phy.max_iterations);
  const auto& res = report.resilience;
  EXPECT_EQ(res.degraded, 1u);
  EXPECT_EQ(res.degrade_histogram[0], 0u);
  EXPECT_EQ(res.degrade_histogram[1] + res.degrade_histogram[2], 1u);
  EXPECT_LE(res.degraded_decode_failures, res.degraded);
}

// Hardened recovery wait: with a (tiny) completion-flag timeout configured
// and migration forced, correctness must be unchanged — the timeout only
// bounds how long the migrator waits before checking whether the host died;
// a slow-but-alive host is still waited out.
TEST(ResilienceRuntimeTest, CompletionFlagTimeoutIsHarmless) {
  auto cfg = resilience_config(RuntimeMode::kRtOpex);
  cfg.mcs_cycle = {27, 16};  // multi-code-block decodes: migratable
  cfg.resilience.completion_flag_timeout = microseconds(1);

  fault::Hooks hooks;
  hooks.plan_window = [](unsigned, unsigned, Duration& window) {
    window = milliseconds(1000);
  };
  fault::ScopedInjection inject(std::move(hooks));

  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
  EXPECT_EQ(report.crc_failures, 0u);
  for (const auto& r : report.records)
    if (!r.dropped) EXPECT_TRUE(r.crc_ok);
  // flag_timeouts is incidental (it fires only when a host is caught
  // mid-subtask), but it must never exceed the number of migrated chunks.
  EXPECT_LE(report.resilience.flag_timeouts, report.migrations);
}

TEST(ResilienceRuntimeTest, ConfigValidationThrows) {
  auto cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.resilience.enable_watchdog = true;
  cfg.resilience.watchdog_timeout = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);

  cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.resilience.enable_degradation = true;
  cfg.resilience.min_turbo_iterations = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
  cfg.resilience.min_turbo_iterations = cfg.phy.max_iterations;  // must be < Lm
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);

  cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.resilience.completion_flag_timeout = -microseconds(1);
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);

  cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.resilience.fronthaul_faults.loss_prob = 1.5;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);

  cfg = resilience_config(RuntimeMode::kPartitioned);
  cfg.initial_decode_subtask_est = 0;
  EXPECT_THROW(NodeRuntime{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::runtime
