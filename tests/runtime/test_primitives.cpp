// Unit tests of the real-thread runtime's building blocks: the migration
// mailbox protocol, the packed CPU-state table, the global clock, and the
// throughput-mode affinity helpers (cpulist parsing, NUMA discovery).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_utils.hpp"
#include "runtime/affinity.hpp"
#include "runtime/clock.hpp"
#include "runtime/cpu_state_table.hpp"
#include "runtime/mailbox.hpp"

namespace rtopex::runtime {
namespace {

TEST(MailboxTest, ClaimFillTakeReleaseCycle) {
  Mailbox box;
  EXPECT_EQ(box.state(), Mailbox::State::kEmpty);
  ASSERT_TRUE(box.try_claim());
  EXPECT_EQ(box.state(), Mailbox::State::kClaimed);
  EXPECT_FALSE(box.try_claim());  // double claim rejected

  std::atomic<std::size_t> next{0}, completed{0};
  MigratedChunk chunk;
  chunk.first = 0;
  chunk.count = 3;
  chunk.next_index = &next;
  chunk.completed = &completed;
  box.fill(std::move(chunk));
  EXPECT_EQ(box.state(), Mailbox::State::kFilled);

  MigratedChunk taken;
  ASSERT_TRUE(box.try_take(taken));
  EXPECT_EQ(taken.count, 3u);
  EXPECT_EQ(box.state(), Mailbox::State::kRunning);
  EXPECT_FALSE(box.try_take(taken));  // only one taker

  box.release();
  EXPECT_EQ(box.state(), Mailbox::State::kEmpty);
  EXPECT_TRUE(box.try_claim());  // reusable
}

TEST(MailboxTest, RevokeOnlyBeforeTake) {
  Mailbox box;
  std::atomic<std::size_t> next{0}, completed{0};
  ASSERT_TRUE(box.try_claim());
  MigratedChunk chunk;
  chunk.next_index = &next;
  chunk.completed = &completed;
  box.fill(std::move(chunk));
  // Revocable while merely filled.
  EXPECT_TRUE(box.try_revoke());
  EXPECT_EQ(box.state(), Mailbox::State::kEmpty);

  // Not revocable once the owner took it.
  ASSERT_TRUE(box.try_claim());
  MigratedChunk chunk2;
  chunk2.next_index = &next;
  chunk2.completed = &completed;
  box.fill(std::move(chunk2));
  MigratedChunk taken;
  ASSERT_TRUE(box.try_take(taken));
  EXPECT_FALSE(box.try_revoke());
}

TEST(MailboxTest, KeepaliveExtendsCounterLifetime) {
  Mailbox box;
  struct Counters {
    std::atomic<std::size_t> next{0}, completed{0};
  };
  auto counters = std::make_shared<Counters>();
  const std::weak_ptr<Counters> watch = counters;
  ASSERT_TRUE(box.try_claim());
  MigratedChunk chunk;
  chunk.next_index = &counters->next;
  chunk.completed = &counters->completed;
  chunk.keepalive = counters;
  box.fill(std::move(chunk));
  counters.reset();
  EXPECT_FALSE(watch.expired());  // the mailbox still holds them
  MigratedChunk taken;
  ASSERT_TRUE(box.try_take(taken));
  box.release();
  EXPECT_FALSE(watch.expired());  // the taker still holds them
  taken = MigratedChunk{};
  EXPECT_TRUE(watch.expired());
}

TEST(MailboxTest, ConcurrentClaimersOnlyOneWins) {
  Mailbox box;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&] {
      if (box.try_claim()) winners.fetch_add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(CpuStateTableTest, RoundTripsActivityAndHorizon) {
  CpuStateTable table(4);
  table.set(2, CoreActivity::kIdle, milliseconds(3));
  const auto snap = table.get(2);
  EXPECT_EQ(snap.activity, CoreActivity::kIdle);
  // Horizon quantized to microseconds.
  EXPECT_EQ(snap.horizon, milliseconds(3));
  table.set(2, CoreActivity::kHosting, 0);
  EXPECT_EQ(table.get(2).activity, CoreActivity::kHosting);
  EXPECT_EQ(table.size(), 4u);
}

TEST(CpuStateTableTest, MicrosecondQuantization) {
  CpuStateTable table(1);
  table.set(0, CoreActivity::kIdle, microseconds(1500) + 999);
  EXPECT_EQ(table.get(0).horizon, microseconds(1500));
  table.set(0, CoreActivity::kIdle, -5);  // negative clamps to 0
  EXPECT_EQ(table.get(0).horizon, 0);
}

TEST(AffinityTest, ParsesCpulistRangesAndSingles) {
  EXPECT_EQ(parse_cpulist("0-3,8,10-11"),
            (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpulist("5"), (std::vector<unsigned>{5}));
  EXPECT_EQ(parse_cpulist(" 2 , 0-1 \n"), (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(parse_cpulist("1,1-2,2"), (std::vector<unsigned>{1, 2}));  // dedup
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist("   \n").empty());
}

TEST(AffinityTest, SkipsMalformedCpulistFragments) {
  // Advisory parse: bad fragments drop out instead of throwing, the valid
  // remainder survives.
  EXPECT_EQ(parse_cpulist("x,3,4-y"), (std::vector<unsigned>{3}));
  EXPECT_EQ(parse_cpulist("5-3,7"), (std::vector<unsigned>{7}));  // inverted
  EXPECT_EQ(parse_cpulist("0-999999999,2"), (std::vector<unsigned>{2}));
  EXPECT_TRUE(parse_cpulist("-,--,-1").empty());
}

TEST(AffinityTest, TopologyCoversEveryCoreAndMapsBack) {
  const NumaTopology topo = detect_numa_topology();
  ASSERT_GE(topo.num_nodes(), 1u);
  std::size_t covered = 0;
  for (std::size_t n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_FALSE(topo.node_cpus[n].empty()) << "CPU-less node " << n;
    covered += topo.node_cpus[n].size();
    for (const unsigned cpu : topo.node_cpus[n])
      EXPECT_EQ(numa_node_of(topo, cpu), n);
  }
  EXPECT_GE(covered, hardware_core_count());
  // CPUs in no node (offline / out of range) map to node 0.
  EXPECT_EQ(numa_node_of(topo, 1u << 20), 0u);
}

TEST(GlobalClockTest, MonotoneAndSpinAccurate) {
  GlobalClock clock;
  const TimePoint a = clock.now();
  const TimePoint b = clock.now();
  EXPECT_GE(b, a);
  const TimePoint target = clock.now() + microseconds(200);
  clock.spin_until(target);
  const TimePoint after = clock.now();
  EXPECT_GE(after, target);
  EXPECT_LT(after, target + milliseconds(50));  // generous CI bound
}

}  // namespace
}  // namespace rtopex::runtime
