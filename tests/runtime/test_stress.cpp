// Concurrency stress suite for the real-thread runtime's synchronization
// primitives and for the full NodeRuntime under injected faults. These
// tests hammer the lock-free pieces from many threads with randomized
// schedules and assert the two invariants the migration design promises:
//   * no subtask is ever executed twice (per-index claim counter), and
//   * no subtask is ever lost (result flags + local recovery).
// Run them under -DRTOPEX_SANITIZE=thread to turn every memory-ordering
// mistake into a hard failure (see EXPERIMENTS.md "Sanitizer & stress runs").
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "runtime/cpu_state_table.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/node_runtime.hpp"

namespace rtopex::runtime {
namespace {

/// Cheap thread-safe pseudo-random decision source for fault hooks: mixes a
/// shared counter so concurrent callers draw distinct values without locks.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// ---------------------------------------------------------------------------
// Claim counter: the no-double-execution core of the migration design.
// ---------------------------------------------------------------------------

TEST(ClaimCounterStress, EveryIndexExecutedExactlyOnce) {
  constexpr std::size_t kIndices = 20'000;
  constexpr unsigned kThreads = 8;
  std::vector<std::atomic<int>> exec(kIndices);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_acq_rel);
        if (i >= kIndices) return;
        exec[i].fetch_add(1, std::memory_order_relaxed);
        completed.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(completed.load(), kIndices);
  for (std::size_t i = 0; i < kIndices; ++i)
    ASSERT_EQ(exec[i].load(), 1) << "index " << i;
}

// ---------------------------------------------------------------------------
// Mailbox protocol under a real hosting thread.
// ---------------------------------------------------------------------------

// One migrating thread runs the full publish/local/recover/revoke protocol
// (mirroring NodeRuntime::run_stage_migrating) against a hosting thread
// running the take/claim/release loop (mirroring rtopex_worker). Invariant:
// every subtask of every round executes exactly once, no matter how the two
// sides interleave or where the host preempts.
TEST(MailboxStress, HandshakeNeverDuplicatesOrLosesSubtasks) {
  constexpr int kRounds = 400;
  constexpr std::size_t kSubtasks = 12;
  Mailbox box;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> salt{0};

  std::thread host([&] {
    while (!stop.load(std::memory_order_acquire)) {
      MigratedChunk c;
      if (!box.try_take(c)) {
        std::this_thread::yield();
        continue;
      }
      for (;;) {
        // Randomized preemption between subtasks (as when the host's own
        // subframe arrives): claimed-but-unfinished work must be recovered.
        if (mix(salt.fetch_add(1)) % 4 == 0) break;
        const std::size_t i =
            c.next_index->fetch_add(1, std::memory_order_acq_rel);
        if (i >= c.first + c.count) break;
        c.run_subtask(i);
        c.completed->fetch_add(1, std::memory_order_acq_rel);
      }
      box.release();
    }
  });

  // Counters and execution marks live in a shared_ptr passed as the chunk's
  // keepalive, exactly like the runtime's LiveChunk: the host may perform one
  // final (empty) claim after the migrating side moved on, so the counters
  // must outlive the round on both sides.
  struct RoundState {
    explicit RoundState(std::size_t n) : exec(n) {}
    std::vector<std::atomic<int>> exec;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
  };

  for (int round = 0; round < kRounds; ++round) {
    auto st = std::make_shared<RoundState>(kSubtasks);
    auto run_subtask = [st](std::size_t i) {
      st->exec[i].fetch_add(1, std::memory_order_relaxed);
    };
    const std::size_t local_end = 1 + mix(round) % (kSubtasks - 1);
    const std::size_t count = kSubtasks - local_end;
    st->next.store(local_end);

    std::size_t migrated = 0;
    if (box.try_claim()) {
      MigratedChunk mc;
      mc.run_subtask = run_subtask;
      mc.first = local_end;
      mc.count = count;
      mc.next_index = &st->next;
      mc.completed = &st->completed;
      mc.keepalive = st;
      box.fill(std::move(mc));
      migrated = count;
    }
    for (std::size_t i = 0; i < local_end; ++i) run_subtask(i);
    std::size_t recovered = 0;
    if (migrated > 0) {
      for (;;) {
        const std::size_t i =
            st->next.fetch_add(1, std::memory_order_acq_rel);
        if (i >= kSubtasks) break;
        run_subtask(i);
        st->completed.fetch_add(1, std::memory_order_acq_rel);
        ++recovered;
      }
      box.try_revoke();
      // Wait out a host that is mid-subtask (bounded by one subtask).
      while (st->completed.load(std::memory_order_acquire) <
             std::min(st->next.load(std::memory_order_acquire), kSubtasks) -
                 local_end)
        std::this_thread::yield();
    } else {
      for (std::size_t i = local_end; i < kSubtasks; ++i) run_subtask(i);
    }

    EXPECT_LE(recovered, migrated);
    for (std::size_t i = 0; i < kSubtasks; ++i)
      ASSERT_EQ(st->exec[i].load(), 1)
          << "round " << round << " index " << i << " executed "
          << st->exec[i].load() << " times";
  }
  stop.store(true, std::memory_order_release);
  host.join();
}

TEST(MailboxStress, ManyClaimersExactlyOneWinnerPerRound) {
  constexpr int kRounds = 300;
  constexpr unsigned kClaimers = 6;
  Mailbox box;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kClaimers; ++t)
      threads.emplace_back([&] {
        if (box.try_claim()) winners.fetch_add(1, std::memory_order_relaxed);
      });
    for (auto& t : threads) t.join();
    ASSERT_EQ(winners.load(), 1) << "round " << round;
    box.release();
  }
}

// ---------------------------------------------------------------------------
// CpuStateTable: packed snapshots must never tear.
// ---------------------------------------------------------------------------

// Writers publish (activity, horizon) pairs whose microsecond horizon is
// congruent to the activity value mod 3; readers must never observe a
// mismatched pair (which would indicate a torn or non-atomic update).
TEST(CpuStateTableStress, SnapshotsAreNeverTorn) {
  CpuStateTable table(2);
  table.set(0, CoreActivity::kIdle, 0);
  std::atomic<bool> stop{false};

  auto writer = [&](std::size_t core, std::uint64_t seed) {
    std::uint64_t k = seed;
    while (!stop.load(std::memory_order_acquire)) {
      const auto a = static_cast<CoreActivity>(k % 3);
      const std::int64_t us = static_cast<std::int64_t>(
          (mix(k) % 1'000'000) * 3 + k % 3);
      table.set(core, a, microseconds(us));
      ++k;
    }
  };
  std::thread w0(writer, 0, 1), w1(writer, 1, 1'000'000'007ULL);

  std::size_t checked = 0;
  for (int iter = 0; iter < 200'000; ++iter) {
    for (std::size_t core = 0; core < table.size(); ++core) {
      const auto snap = table.get(core);
      const auto horizon_us = snap.horizon / 1000;
      ASSERT_EQ(horizon_us % 3,
                static_cast<std::int64_t>(snap.activity))
          << "torn snapshot on core " << core;
      ++checked;
    }
  }
  stop.store(true, std::memory_order_release);
  w0.join();
  w1.join();
  EXPECT_GT(checked, 0u);
}

// ---------------------------------------------------------------------------
// Full NodeRuntime under injected faults.
// ---------------------------------------------------------------------------

RuntimeConfig stress_config() {
  RuntimeConfig cfg;
  cfg.mode = RuntimeMode::kRtOpex;
  cfg.num_basestations = 1;
  cfg.cores_per_bs = 2;
  cfg.subframes_per_bs = 6;
  cfg.subframe_period = milliseconds(60);
  cfg.deadline_budget = milliseconds(120);
  cfg.mcs_cycle = {27};  // multi-code-block decode: both stages migratable
  cfg.phy.num_antennas = 2;
  cfg.phy.bandwidth = phy::Bandwidth::kMHz5;
  cfg.enforce_deadlines = false;  // timing-independent: no wall-clock drops
  cfg.seed = 11;
  return cfg;
}

void check_conservation(const RuntimeReport& report,
                        const RuntimeConfig& cfg) {
  ASSERT_EQ(report.records.size(),
            static_cast<std::size_t>(cfg.num_basestations) *
                cfg.subframes_per_bs);
  std::set<std::pair<unsigned, std::uint32_t>> seen;
  std::size_t migrated = 0, recovered = 0;
  for (const auto& r : report.records) {
    EXPECT_TRUE(seen.insert({r.bs, r.index}).second)
        << "duplicate subframe bs=" << r.bs << " idx=" << r.index;
    EXPECT_TRUE(r.crc_ok || r.dropped)
        << "lost subframe bs=" << r.bs << " idx=" << r.index;
    // Every record terminates exactly one way: dropped xor decoded.
    EXPECT_NE(r.dropped, r.crc_ok);
    // Recovered subtasks are a subset of the migrated ones.
    EXPECT_LE(r.timing.recovered,
              r.timing.fft_migrated + r.timing.decode_migrated);
    migrated += r.timing.fft_migrated + r.timing.decode_migrated;
    recovered += r.timing.recovered;
  }
  EXPECT_EQ(report.migrations, migrated);
  EXPECT_EQ(report.recoveries, recovered);
  EXPECT_LE(report.recoveries, report.migrations);
  EXPECT_EQ(report.crc_failures, 0u);
}

// The acceptance-criterion test: with the planner forced to migrate and the
// hosting cores stalled, every migrated subtask must be recovered locally —
// recoveries > 0 deterministically, with no reliance on wall-clock timing.
TEST(FaultInjectionStress, ForcedRecoveryIsDeterministic) {
  fault::Hooks hooks;
  hooks.plan_window = [](unsigned, unsigned, Duration& window) {
    window = milliseconds(1000);  // every other core looks invitingly idle
  };
  hooks.host_take = [](std::size_t) { return false; };  // hosts never start
  fault::ScopedInjection inject(std::move(hooks));

  const auto cfg = stress_config();
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
  EXPECT_GT(report.migrations, 0u);
  // Hosts never execute anything, so every migrated subtask is recovered.
  EXPECT_EQ(report.recoveries, report.migrations);
}

TEST(FaultInjectionStress, FailedClaimsKeepEverythingLocal) {
  fault::Hooks hooks;
  hooks.plan_window = [](unsigned, unsigned, Duration& window) {
    window = milliseconds(1000);
  };
  hooks.claim = [](std::size_t) { return false; };  // every claim loses
  fault::ScopedInjection inject(std::move(hooks));

  const auto cfg = stress_config();
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_EQ(report.recoveries, 0u);
}

TEST(FaultInjectionStress, RandomizedFaultsPreserveConservation) {
  auto salt = std::make_shared<std::atomic<std::uint64_t>>(0);
  fault::Hooks hooks;
  hooks.plan_window = [](unsigned, unsigned, Duration& window) {
    window = milliseconds(1000);
  };
  hooks.claim = [salt](std::size_t) {
    return mix(salt->fetch_add(1)) % 10 < 7;  // ~30% of claims fail
  };
  hooks.host_subtask = [salt](std::size_t) {
    return mix(salt->fetch_add(1)) % 10 < 8;  // ~20% forced preemptions
  };
  hooks.transport_jitter = [salt](unsigned, std::uint32_t) {
    return microseconds(
        static_cast<std::int64_t>(mix(salt->fetch_add(1)) % 500));
  };
  fault::ScopedInjection inject(std::move(hooks));

  auto cfg = stress_config();
  cfg.num_basestations = 2;
  cfg.subframes_per_bs = 8;
  cfg.mcs_cycle = {27, 16};
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
}

TEST(FaultInjectionStress, DelayedFillStillConserves) {
  fault::Hooks hooks;
  hooks.plan_window = [](unsigned, unsigned, Duration& window) {
    window = milliseconds(1000);
  };
  hooks.fill = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  fault::ScopedInjection inject(std::move(hooks));

  const auto cfg = stress_config();
  NodeRuntime runtime(cfg);
  const auto report = runtime.run();
  check_conservation(report, cfg);
}

}  // namespace
}  // namespace rtopex::runtime
