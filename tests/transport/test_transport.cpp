#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "transport/transport.hpp"

namespace rtopex::transport {
namespace {

TEST(FronthaulTest, PropagationIsFiveMicrosecondsPerKm) {
  FronthaulModel fh;
  fh.fiber_km = 20.0;
  fh.switching_overhead = microseconds(25);
  EXPECT_EQ(fh.one_way(), microseconds(125));
  // Paper §2.3: 20-40 km -> 0.1-0.2 ms one-way propagation.
  fh.switching_overhead = 0;
  fh.fiber_km = 40.0;
  EXPECT_EQ(fh.one_way(), microseconds(200));
}

TEST(CloudNetworkTest, BodyMeanMatchesFigure6) {
  // Fig. 6: mean one-way latency ~0.15 ms.
  CloudNetworkModel model(cloud_params_10gbe());
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 200000; ++i)
    s.add(to_us(model.sample_one_way(rng)));
  EXPECT_NEAR(s.mean(), 140.0, 5.0);
}

TEST(CloudNetworkTest, LongTailAtTenToMinusFour) {
  // Fig. 6: about 1 in 1e4 packets above 0.25 ms.
  CloudNetworkModel model(cloud_params_1gbe());
  Rng rng(2);
  std::size_t above = 0;
  constexpr int kN = 2000000;
  for (int i = 0; i < kN; ++i)
    if (model.sample_one_way(rng) > microseconds(250)) ++above;
  const double frac = static_cast<double>(above) / kN;
  EXPECT_GT(frac, 1e-5);
  EXPECT_LT(frac, 1e-3);
}

TEST(IqTransportTest, BytesPerAntennaMatchSampleRates) {
  // 1 ms of 4-byte IQ samples.
  EXPECT_EQ(IqTransportModel::bytes_per_antenna(phy::Bandwidth::kMHz5),
            7680u * 4u);
  EXPECT_EQ(IqTransportModel::bytes_per_antenna(phy::Bandwidth::kMHz10),
            15360u * 4u);
}

TEST(IqTransportTest, LatencyAnchorsFromFigure7) {
  const IqTransportModel model;
  // 10 MHz, 8 antennas: paper reports ~0.9 ms one-way (the most the GPP
  // can support without queueing).
  const double us_10mhz_8ant =
      to_us(model.one_way_nominal(phy::Bandwidth::kMHz10, 8));
  EXPECT_NEAR(us_10mhz_8ant, 900.0, 80.0);
  // 5 MHz, 16 antennas: ~620 us max.
  const double us_5mhz_16ant =
      to_us(model.one_way_nominal(phy::Bandwidth::kMHz5, 16));
  EXPECT_NEAR(us_5mhz_16ant, 620.0, 80.0);
}

TEST(IqTransportTest, LatencyMonotoneInAntennasAndBandwidth) {
  const IqTransportModel model;
  Duration prev = 0;
  for (unsigned n = 1; n <= 16; ++n) {
    const Duration d = model.one_way_nominal(phy::Bandwidth::kMHz10, n);
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_GT(model.one_way_nominal(phy::Bandwidth::kMHz10, 4),
            model.one_way_nominal(phy::Bandwidth::kMHz5, 4));
}

TEST(IqTransportTest, JitterIsNonNegative) {
  const IqTransportModel model;
  Rng rng(3);
  const Duration nominal = model.one_way_nominal(phy::Bandwidth::kMHz10, 2);
  for (int i = 0; i < 10000; ++i)
    EXPECT_GE(model.sample_one_way(phy::Bandwidth::kMHz10, 2, rng), nominal);
}

TEST(TransportModelTest, FixedTransportIsExact) {
  FixedTransport t(microseconds(500));
  Rng rng(4);
  EXPECT_EQ(t.sample_delay(rng), microseconds(500));
  EXPECT_EQ(t.nominal_delay(), microseconds(500));
}

TEST(FronthaulTest, ValidateRejectsNonsenseFields) {
  FronthaulModel fh;
  fh.fiber_km = -1.0;
  EXPECT_THROW(fh.validate(), std::invalid_argument);
  fh.fiber_km = 20.0;
  fh.switching_overhead = -microseconds(1);
  EXPECT_THROW(fh.validate(), std::invalid_argument);
  fh.switching_overhead = 0;
  EXPECT_NO_THROW(fh.validate());
}

TEST(CloudNetworkTest, ConstructorRejectsInvalidParams) {
  const auto with = [](auto&& mutate) {
    CloudNetworkParams p;
    mutate(p);
    return p;
  };
  EXPECT_THROW(CloudNetworkModel(with([](auto& p) { p.body_mean_us = 0.0; })),
               std::invalid_argument);
  EXPECT_THROW(CloudNetworkModel(with([](auto& p) { p.body_sigma = -0.1; })),
               std::invalid_argument);
  EXPECT_THROW(CloudNetworkModel(with([](auto& p) { p.tail_prob = -1e-4; })),
               std::invalid_argument);
  EXPECT_THROW(CloudNetworkModel(with([](auto& p) { p.tail_prob = 1.5; })),
               std::invalid_argument);
  EXPECT_THROW(CloudNetworkModel(with([](auto& p) { p.tail_scale_us = 0.0; })),
               std::invalid_argument);
  // Pareto shape <= 1: infinite-mean tail must be rejected.
  EXPECT_THROW(CloudNetworkModel(with([](auto& p) { p.tail_shape = 1.0; })),
               std::invalid_argument);
  // ...but only when a tail exists at all.
  EXPECT_NO_THROW(CloudNetworkModel(with([](auto& p) {
    p.tail_prob = 0.0;
    p.tail_shape = 0.5;
  })));
}

TEST(CloudNetworkTest, SamplingIsSeedDeterministic) {
  const CloudNetworkModel model(cloud_params_10gbe());
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const Duration da = model.sample_one_way(a);
    EXPECT_EQ(da, model.sample_one_way(b));
    if (da != model.sample_one_way(c)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(CloudNetworkTest, EmpiricalTailProbabilityWithinTolerance) {
  // Inflate the tail so its frequency is measurable, then check the fraction
  // of samples above a threshold the lognormal body essentially never
  // reaches (P(body > 280 us) ~ 1e-8 at mean 140, sigma 0.12). A tail draw
  // adds a Pareto >= 120 us, so most — not all — tail samples cross it.
  CloudNetworkParams p = cloud_params_10gbe();
  p.tail_prob = 0.02;
  const CloudNetworkModel model(p);
  Rng rng(7);
  constexpr int kN = 200000;
  std::size_t above = 0;
  for (int i = 0; i < kN; ++i)
    if (model.sample_one_way(rng) > microseconds(280)) ++above;
  const double frac = static_cast<double>(above) / kN;
  EXPECT_GT(frac, 0.4 * p.tail_prob);
  EXPECT_LT(frac, 1.1 * p.tail_prob);
}

TEST(FronthaulFaultTest, ConstructorRejectsInvalidParams) {
  const auto with = [](auto&& mutate) {
    FronthaulFaultParams p;
    mutate(p);
    return p;
  };
  EXPECT_THROW(FronthaulFaultModel(with([](auto& p) { p.loss_prob = -0.1; })),
               std::invalid_argument);
  EXPECT_THROW(FronthaulFaultModel(with([](auto& p) { p.loss_prob = 1.1; })),
               std::invalid_argument);
  EXPECT_THROW(FronthaulFaultModel(with([](auto& p) { p.late_prob = 2.0; })),
               std::invalid_argument);
  EXPECT_THROW(FronthaulFaultModel(with([](auto& p) {
                 p.late_prob = 0.1;
                 p.late_delay_mean = 0;
               })),
               std::invalid_argument);
  EXPECT_THROW(FronthaulFaultModel(with([](auto& p) {
                 p.late_prob = 0.1;
                 p.late_delay_max = microseconds(10);  // < mean
               })),
               std::invalid_argument);
  EXPECT_NO_THROW(FronthaulFaultModel(with([](auto&) {})));
}

TEST(FronthaulFaultTest, SampleMatchesConfiguredRates) {
  FronthaulFaultParams p;
  p.loss_prob = 0.1;
  p.late_prob = 0.2;
  const FronthaulFaultModel model(p);
  Rng rng(11);
  constexpr int kN = 100000;
  std::size_t lost = 0, late = 0;
  for (int i = 0; i < kN; ++i) {
    const FronthaulFault f = model.sample(rng);
    if (f.lost) {
      EXPECT_EQ(f.extra_delay, Duration{0});
      ++lost;
    } else if (f.extra_delay > 0) {
      EXPECT_LE(f.extra_delay, p.late_delay_max);
      ++late;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / kN, p.loss_prob, 0.01);
  // late_prob applies to the non-lost survivors.
  EXPECT_NEAR(static_cast<double>(late) / (kN - lost), p.late_prob, 0.01);
}

TEST(FronthaulFaultTest, DisabledModelNeverFaults) {
  const FronthaulFaultModel model;
  EXPECT_FALSE(model.params().enabled());
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const FronthaulFault f = model.sample(rng);
    EXPECT_FALSE(f.lost);
    EXPECT_EQ(f.extra_delay, Duration{0});
  }
}

TEST(TransportModelTest, CompositeCombinesFronthaulAndCloud) {
  FronthaulModel fh;
  fh.fiber_km = 20.0;
  CompositeTransport t(fh, cloud_params_10gbe());
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(to_us(t.sample_delay(rng)));
  EXPECT_NEAR(s.mean(), to_us(fh.one_way()) + 140.0, 8.0);
  EXPECT_GT(s.min(), to_us(fh.one_way()));
}

}  // namespace
}  // namespace rtopex::transport
