#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "transport/transport.hpp"

namespace rtopex::transport {
namespace {

TEST(FronthaulTest, PropagationIsFiveMicrosecondsPerKm) {
  FronthaulModel fh;
  fh.fiber_km = 20.0;
  fh.switching_overhead = microseconds(25);
  EXPECT_EQ(fh.one_way(), microseconds(125));
  // Paper §2.3: 20-40 km -> 0.1-0.2 ms one-way propagation.
  fh.switching_overhead = 0;
  fh.fiber_km = 40.0;
  EXPECT_EQ(fh.one_way(), microseconds(200));
}

TEST(CloudNetworkTest, BodyMeanMatchesFigure6) {
  // Fig. 6: mean one-way latency ~0.15 ms.
  CloudNetworkModel model(cloud_params_10gbe());
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 200000; ++i)
    s.add(to_us(model.sample_one_way(rng)));
  EXPECT_NEAR(s.mean(), 140.0, 5.0);
}

TEST(CloudNetworkTest, LongTailAtTenToMinusFour) {
  // Fig. 6: about 1 in 1e4 packets above 0.25 ms.
  CloudNetworkModel model(cloud_params_1gbe());
  Rng rng(2);
  std::size_t above = 0;
  constexpr int kN = 2000000;
  for (int i = 0; i < kN; ++i)
    if (model.sample_one_way(rng) > microseconds(250)) ++above;
  const double frac = static_cast<double>(above) / kN;
  EXPECT_GT(frac, 1e-5);
  EXPECT_LT(frac, 1e-3);
}

TEST(IqTransportTest, BytesPerAntennaMatchSampleRates) {
  // 1 ms of 4-byte IQ samples.
  EXPECT_EQ(IqTransportModel::bytes_per_antenna(phy::Bandwidth::kMHz5),
            7680u * 4u);
  EXPECT_EQ(IqTransportModel::bytes_per_antenna(phy::Bandwidth::kMHz10),
            15360u * 4u);
}

TEST(IqTransportTest, LatencyAnchorsFromFigure7) {
  const IqTransportModel model;
  // 10 MHz, 8 antennas: paper reports ~0.9 ms one-way (the most the GPP
  // can support without queueing).
  const double us_10mhz_8ant =
      to_us(model.one_way_nominal(phy::Bandwidth::kMHz10, 8));
  EXPECT_NEAR(us_10mhz_8ant, 900.0, 80.0);
  // 5 MHz, 16 antennas: ~620 us max.
  const double us_5mhz_16ant =
      to_us(model.one_way_nominal(phy::Bandwidth::kMHz5, 16));
  EXPECT_NEAR(us_5mhz_16ant, 620.0, 80.0);
}

TEST(IqTransportTest, LatencyMonotoneInAntennasAndBandwidth) {
  const IqTransportModel model;
  Duration prev = 0;
  for (unsigned n = 1; n <= 16; ++n) {
    const Duration d = model.one_way_nominal(phy::Bandwidth::kMHz10, n);
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_GT(model.one_way_nominal(phy::Bandwidth::kMHz10, 4),
            model.one_way_nominal(phy::Bandwidth::kMHz5, 4));
}

TEST(IqTransportTest, JitterIsNonNegative) {
  const IqTransportModel model;
  Rng rng(3);
  const Duration nominal = model.one_way_nominal(phy::Bandwidth::kMHz10, 2);
  for (int i = 0; i < 10000; ++i)
    EXPECT_GE(model.sample_one_way(phy::Bandwidth::kMHz10, 2, rng), nominal);
}

TEST(TransportModelTest, FixedTransportIsExact) {
  FixedTransport t(microseconds(500));
  Rng rng(4);
  EXPECT_EQ(t.sample_delay(rng), microseconds(500));
  EXPECT_EQ(t.nominal_delay(), microseconds(500));
}

TEST(TransportModelTest, CompositeCombinesFronthaulAndCloud) {
  FronthaulModel fh;
  fh.fiber_km = 20.0;
  CompositeTransport t(fh, cloud_params_10gbe());
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(to_us(t.sample_delay(rng)));
  EXPECT_NEAR(s.mean(), to_us(fh.one_way()) + 140.0, 8.0);
  EXPECT_GT(s.min(), to_us(fh.one_way()));
}

}  // namespace
}  // namespace rtopex::transport
