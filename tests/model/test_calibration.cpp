// The iteration-model calibrator must recover the parameters of a known
// synthetic decoder, and produce sane parameters from the real PHY chain.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/calibration.hpp"

namespace rtopex::model {
namespace {

std::vector<IterationSample> synthetic_samples(
    const IterationModelParams& truth, std::uint64_t seed) {
  const IterationModel gen(truth);
  Rng rng(seed);
  std::vector<IterationSample> samples;
  for (unsigned mcs = 0; mcs <= 27; mcs += 3) {
    for (double snr = -6.0; snr <= 30.0; snr += 2.0) {
      for (int i = 0; i < 300; ++i) {
        const auto out = gen.sample(mcs, snr, 4, rng);
        samples.push_back({mcs, snr, out.iterations, out.decoded});
      }
    }
  }
  return samples;
}

TEST(CalibrationTest, RecoversSyntheticTruth) {
  IterationModelParams truth;
  truth.threshold_base_db = -4.0;
  truth.threshold_slope_db = 1.0;
  truth.q_base = 0.7;
  truth.q_slope = 0.04;
  const auto samples = synthetic_samples(truth, 1);
  const auto fit = calibrate_iteration_model(samples);
  EXPECT_NEAR(fit.threshold_base_db, truth.threshold_base_db, 1.0);
  EXPECT_NEAR(fit.threshold_slope_db, truth.threshold_slope_db, 0.1);
  EXPECT_NEAR(fit.q_base, truth.q_base, 0.08);
  EXPECT_NEAR(fit.q_slope, truth.q_slope, 0.015);
}

TEST(CalibrationTest, CalibratedModelReproducesFailureCurve) {
  IterationModelParams truth;  // defaults
  const auto samples = synthetic_samples(truth, 2);
  const auto fit = calibrate_iteration_model(samples);
  const IterationModel a(truth), b(fit);
  for (unsigned mcs = 0; mcs <= 27; mcs += 9)
    for (double snr = 0.0; snr <= 30.0; snr += 10.0)
      EXPECT_NEAR(a.failure_probability(mcs, snr),
                  b.failure_probability(mcs, snr), 0.15)
          << "mcs=" << mcs << " snr=" << snr;
}

TEST(CalibrationTest, KeepsDefaultsWhenUnidentifiable) {
  // All successes at one margin: thresholds cannot be estimated.
  std::vector<IterationSample> samples;
  for (int i = 0; i < 100; ++i) samples.push_back({10, 30.0, 1, true});
  for (int i = 0; i < 100; ++i) samples.push_back({10, 28.0, 1, true});
  IterationModelParams defaults;
  defaults.threshold_base_db = -9.0;
  const auto fit = calibrate_iteration_model(samples, defaults);
  EXPECT_EQ(fit.threshold_base_db, -9.0);
}

TEST(CalibrationTest, RejectsDegenerateInput) {
  EXPECT_THROW(calibrate_iteration_model({}), std::invalid_argument);
  EXPECT_THROW(calibrate_iteration_model({{10, 30.0, 1, true}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::model
