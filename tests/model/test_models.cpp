#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "model/iteration_model.hpp"
#include "model/platform_error.hpp"
#include "model/task_cost_model.hpp"
#include "model/timing_model.hpp"

namespace rtopex::model {
namespace {

TEST(TimingModelTest, PaperConstantsPredictKnownAnchors) {
  const TimingModel m = paper_gpp_model();
  // Paper §2.1: "each additional antenna adds 169us while each Turbo
  // iteration at MCS 27 adds 345us".
  const Duration one_ant = m.predict(1, 6, 3.7, 2.0);
  const Duration two_ant = m.predict(2, 6, 3.7, 2.0);
  EXPECT_NEAR(to_us(two_ant - one_ant), 169.1, 0.5);
  const Duration l2 = m.predict(2, 6, 3.7, 2.0);
  const Duration l3 = m.predict(2, 6, 3.7, 3.0);
  EXPECT_NEAR(to_us(l3 - l2), 344.1, 1.0);
}

TEST(TimingModelTest, WcetSubstitutesMaxIterations) {
  const TimingModel m = paper_gpp_model();
  EXPECT_EQ(m.wcet(2, 6, 3.7, 4), m.predict(2, 6, 3.7, 4.0));
  EXPECT_GT(m.wcet(2, 6, 3.7, 4), m.predict(2, 6, 3.7, 1.0));
}

TEST(TimingModelTest, FitRecoversSyntheticTruth) {
  const TimingModel truth = paper_gpp_model();
  Rng rng(1);
  std::vector<TimingMeasurement> data;
  for (int i = 0; i < 2000; ++i) {
    TimingMeasurement m;
    m.antennas = 1 + rng.uniform_int(2);
    m.modulation_order = 2 * (1 + rng.uniform_int(3));
    m.subcarrier_load = rng.uniform(0.16, 3.7);
    m.iterations = 1.0 + static_cast<double>(rng.uniform_int(4));
    m.time_us = truth.w0_us + truth.w1_us * m.antennas +
                truth.w2_us * m.modulation_order +
                truth.w3_us * m.subcarrier_load * m.iterations +
                rng.normal(0.0, 10.0);
    data.push_back(m);
  }
  const TimingModel fit = fit_timing_model(data);
  EXPECT_NEAR(fit.w0_us, truth.w0_us, 3.0);
  EXPECT_NEAR(fit.w1_us, truth.w1_us, 2.0);
  EXPECT_NEAR(fit.w2_us, truth.w2_us, 1.0);
  EXPECT_NEAR(fit.w3_us, truth.w3_us, 1.0);
  EXPECT_GT(fit.r_squared, 0.99);
  const auto residuals = model_residuals(fit, data);
  EXPECT_EQ(residuals.size(), data.size());
  EXPECT_THROW(fit_timing_model({}), std::invalid_argument);
}

TEST(PlatformErrorTest, NonNegativeWithLongTail) {
  PlatformErrorModel model;
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 300000; ++i)
    samples.push_back(to_us(model.sample(rng)));
  for (const double s : samples) EXPECT_GE(s, 0.0);
  // Fig. 3(d): 99.9% of errors below 0.15 ms, rare spikes up to ~0.7 ms.
  EXPECT_LT(quantile(samples, 0.999), 150.0);
  const double max = *std::max_element(samples.begin(), samples.end());
  EXPECT_GT(max, 200.0);
  EXPECT_LE(max, 1000.0);
}

TEST(IterationModelTest, MarginAndFailureMonotonicity) {
  const IterationModel model;
  // Higher MCS at fixed SNR -> smaller margin -> more failures.
  EXPECT_GT(model.margin_db(0, 30.0), model.margin_db(27, 30.0));
  EXPECT_LT(model.failure_probability(0, 30.0),
            model.failure_probability(27, 10.0));
  // Deep negative margin: nearly certain failure.
  EXPECT_GT(model.failure_probability(27, 0.0), 0.99);
}

TEST(IterationModelTest, IterationsIncreaseAsSnrDrops) {
  const IterationModel model;
  Rng rng(3);
  const auto mean_l = [&](double snr) {
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i)
      sum += model.sample(16, snr, 4, rng).iterations;
    return sum / 20000.0;
  };
  const double high = mean_l(30.0);
  const double low = mean_l(14.0);
  EXPECT_LT(high, low);
  EXPECT_GE(high, 1.0);
  EXPECT_LE(low, 4.0);
}

TEST(IterationModelTest, FailureForcesMaxIterations) {
  const IterationModel model;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto out = model.sample(27, -10.0, 4, rng);
    EXPECT_FALSE(out.decoded);
    EXPECT_EQ(out.iterations, 4u);
  }
}

TEST(TaskCostModelTest, StagesSumToEquationOne) {
  const TimingModel timing = paper_gpp_model();
  const TaskCostModel model(timing, 2, 50);
  for (unsigned mcs = 0; mcs <= 27; ++mcs) {
    for (unsigned l = 1; l <= 4; ++l) {
      const Duration jitter = microseconds(17);
      const SubframeCosts c = model.costs(mcs, l, jitter);
      const Duration expected =
          timing.predict(2, phy::modulation_order(mcs),
                         phy::subcarrier_load(mcs, 50), l) +
          jitter;
      EXPECT_NEAR(to_us(c.total()), to_us(expected), 1.0)
          << "mcs=" << mcs << " L=" << l;
    }
  }
}

TEST(TaskCostModelTest, SubtaskStructureConsistent) {
  const TaskCostModel model(paper_gpp_model(), 2, 50);
  const SubframeCosts c = model.costs(27, 4, 0);
  EXPECT_EQ(c.fft_subtasks, 28u);   // 14 symbols x 2 antennas
  EXPECT_EQ(c.decode_subtasks, 6u); // 6 code blocks at MCS 27
  EXPECT_GE(c.decode_serial(), 0);
  EXPECT_LE(static_cast<Duration>(c.fft_subtasks) * c.fft_subtask, c.fft);
  // Decode parallel part dominates at high L.
  EXPECT_GT(static_cast<Duration>(c.decode_subtasks) * c.decode_subtask,
            c.decode / 2);
}

TEST(TaskCostModelTest, PaperStageAnchors) {
  // Fig. 4 / Fig. 18 anchors at N = 2, MCS 27: FFT ~108 us; decode at
  // L = 2 ~980 us with a ~310 us serial residue.
  const TaskCostModel model(paper_gpp_model(), 2, 50);
  const SubframeCosts c = model.costs(27, 2, 0);
  EXPECT_NEAR(to_us(c.fft), 108.0, 15.0);
  EXPECT_NEAR(to_us(c.decode), 980.0, 60.0);
  EXPECT_NEAR(to_us(c.decode_serial()), 310.0, 50.0);
}

TEST(TaskCostModelTest, IterationScalingIsolatedToDecode) {
  const TaskCostModel model(paper_gpp_model(), 2, 50);
  const SubframeCosts l1 = model.costs(20, 1, 0);
  const SubframeCosts l4 = model.costs(20, 4, 0);
  EXPECT_EQ(l1.fft, l4.fft);
  EXPECT_EQ(l1.demod, l4.demod);
  EXPECT_GT(l4.decode, l1.decode);
  // The decode serial residue is L-independent.
  EXPECT_NEAR(to_us(l1.decode_serial()), to_us(l4.decode_serial()), 2.0);
}

TEST(TaskCostModelTest, CostsScaleWithBandwidth) {
  // Eq. (1) is calibrated at 50 PRB; narrowband cells cost proportionally
  // less (same D, half the REs/bits at 25 PRB).
  const TaskCostModel macro(paper_gpp_model(), 2, 50);
  const TaskCostModel iot(paper_gpp_model(), 2, 25);
  const SubframeCosts m = macro.costs(20, 2, 0);
  const SubframeCosts i = iot.costs(20, 2, 0);
  EXPECT_LT(i.total(), m.total());
  // Variable part halves; the w0 constant does not.
  const double w0 = paper_gpp_model().w0_us;
  EXPECT_NEAR(to_us(i.total()) - w0, (to_us(m.total()) - w0) / 2.0,
              (to_us(m.total()) - w0) * 0.02);
  // Fewer code blocks at the smaller transport block.
  EXPECT_LE(i.decode_subtasks, m.decode_subtasks);
}

TEST(TaskCostModelTest, RejectsBadParams) {
  EXPECT_THROW(TaskCostModel(paper_gpp_model(), 0, 50), std::invalid_argument);
  TaskCostParams bad;
  bad.fft_share = 0.9;
  bad.demod_antenna_share = 0.5;
  EXPECT_THROW(TaskCostModel(paper_gpp_model(), 2, 50, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::model
