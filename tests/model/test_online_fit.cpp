// Online adaptive estimators: the streaming Eq. (1) RLS fit converges to a
// seeded ground-truth coefficient vector, predictions fall back to the
// static seed until warmup and never go non-positive or non-finite under
// adversarial streams (zero-iteration jobs, fault-truncated stages,
// non-finite regressors), the per-BS iteration predictor stays inside the
// PR-2 cap, and the duration EWMAs stay division-safe.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/online_fit.hpp"

namespace rtopex::model {
namespace {

// The paper's GPP Eq. (1) coefficients (us): t = w0 + w1*N + w2*K + w3*D*L.
constexpr double kW0 = 31.4;
constexpr double kW1 = 169.1;
constexpr double kW2 = 49.7;
constexpr double kW3 = 93.0;

double eq1_us(unsigned antennas, unsigned mod_order, double load,
              double iters) {
  return kW0 + kW1 * antennas + kW2 * mod_order + kW3 * load * iters;
}

/// Streams `rounds` sweeps of a diverse noiseless operating grid into the
/// fit. Returns the number of observations fed.
std::size_t feed_grid(Eq1OnlineFit& fit, unsigned rounds) {
  std::size_t n = 0;
  for (unsigned r = 0; r < rounds; ++r) {
    for (unsigned antennas : {1u, 2u, 4u}) {
      for (unsigned mod : {2u, 4u, 6u}) {
        for (double load : {0.3, 0.6, 1.0}) {
          for (double iters : {1.0, 2.0, 4.0}) {
            const double us = eq1_us(antennas, mod, load, iters);
            fit.observe(antennas, mod, load, iters,
                        static_cast<Duration>(std::llround(us * 1000.0)));
            ++n;
          }
        }
      }
    }
  }
  return n;
}

TEST(Eq1OnlineFit, ConvergesToSeededEq1Coefficients) {
  Eq1OnlineFit fit;
  feed_grid(fit, 10);
  ASSERT_TRUE(fit.warmed_up());

  // Noiseless linear data (ns-quantized): the fit should land on the paper
  // coefficients to well under an Eq. (1) unit.
  const auto w = fit.coefficients_us();
  EXPECT_NEAR(w[0], kW0, 1.0);
  EXPECT_NEAR(w[1], kW1, 1.0);
  EXPECT_NEAR(w[2], kW2, 1.0);
  EXPECT_NEAR(w[3], kW3, 1.0);

  // And predictions at a point NOT on the training grid track the closed
  // form (3 antennas, QPSK, 80% load, 3 iterations).
  const double truth_us = eq1_us(3, 2, 0.8, 3.0);
  const Duration pred = fit.predict_or(3, 2, 0.8, 3.0, /*fallback=*/1);
  EXPECT_NEAR(static_cast<double>(pred) / 1000.0, truth_us,
              0.02 * truth_us);
}

TEST(Eq1OnlineFit, FallsBackUntilWarmup) {
  AdaptiveParams params;
  ASSERT_EQ(params.warmup_samples, 32u);
  Eq1OnlineFit fit(params);
  const Duration fallback = 777777;

  for (unsigned i = 0; i < params.warmup_samples - 1; ++i) {
    fit.observe(2, 4, 0.5, 2.0, 500000);
    EXPECT_FALSE(fit.warmed_up());
    EXPECT_EQ(fit.predict_or(2, 4, 0.5, 2.0, fallback), fallback);
  }
  fit.observe(2, 4, 0.5, 2.0, 500000);
  EXPECT_TRUE(fit.warmed_up());
  // Trained on a single operating point at 500 us, the warmed-up fit must
  // now answer for itself (and near the observed level, not the fallback).
  const Duration pred = fit.predict_or(2, 4, 0.5, 2.0, fallback);
  EXPECT_NE(pred, fallback);
  EXPECT_NEAR(static_cast<double>(pred), 500000.0, 50000.0);
}

TEST(Eq1OnlineFit, AdversarialStreamsNeverYieldNonPositiveOrNaN) {
  Eq1OnlineFit fit;

  // Fault-truncated stages (time <= 0) are ignored outright.
  fit.observe(2, 4, 0.5, 2.0, 0);
  fit.observe(2, 4, 0.5, 2.0, -123456);
  EXPECT_EQ(fit.samples(), 0u);

  // Non-finite regressors must not poison the state.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  fit.observe(2, 4, nan, 2.0, 500000);
  fit.observe(2, 4, 0.5, inf, 500000);

  // Degenerate stream: zero-iteration jobs at one fixed operating point —
  // a rank-deficient design the RLS can never fully identify.
  for (unsigned i = 0; i < 200; ++i) fit.observe(2, 4, 0.5, 0.0, 1000);

  // Wherever we ask — including wild extrapolations the degenerate fit has
  // no basis for — the guarded prediction is finite and >= 1 ns.
  for (unsigned antennas : {0u, 1u, 100u}) {
    for (double iters : {0.0, 1.0, 1000.0}) {
      const Duration p = fit.predict_or(antennas, 6, 1.0, iters, 42);
      EXPECT_GE(p, 1) << "antennas=" << antennas << " iters=" << iters;
    }
  }
  const auto w = fit.coefficients_us();
  for (double c : w) EXPECT_TRUE(std::isfinite(c));
}

TEST(IterationPredictor, StaysWithinTheIterationCap) {
  const unsigned lm = 4;
  IterationPredictor pred(/*initial=*/4.0, lm);
  EXPECT_GE(pred.predict(), 1u);
  EXPECT_LE(pred.predict(), lm);

  // Zero (decode never ran) is ignored.
  pred.observe(0);
  EXPECT_EQ(pred.samples(), 0u);

  // A long run of single-iteration decodes drags the mean down, but the
  // prediction never leaves [1, Lm].
  for (unsigned i = 0; i < 100; ++i) {
    pred.observe(1);
    EXPECT_GE(pred.predict(), 1u);
    EXPECT_LE(pred.predict(), lm);
  }
  EXPECT_NEAR(pred.mean(), 1.0, 0.05);

  // Absurd executed counts (above Lm — e.g. a buggy producer) still cannot
  // push the prediction past the cap.
  for (unsigned i = 0; i < 100; ++i) {
    pred.observe(1000);
    EXPECT_LE(pred.predict(), lm);
  }
  EXPECT_EQ(pred.predict(), lm);
}

TEST(DurationEwma, FallsBackThenTracksAndStaysPositive) {
  DurationEwma ewma;
  EXPECT_EQ(ewma.value_or(12345), 12345);

  // Non-positive samples are ignored; the fallback still wins.
  ewma.observe(0);
  ewma.observe(-50);
  EXPECT_EQ(ewma.samples(), 0u);
  EXPECT_EQ(ewma.value_or(12345), 12345);

  for (unsigned i = 0; i < 50; ++i) ewma.observe(20000);
  EXPECT_NEAR(static_cast<double>(ewma.value_or(1)), 20000.0, 1.0);
  // Division-safe floor even if the stream collapses toward zero.
  for (unsigned i = 0; i < 200; ++i) ewma.observe(1);
  EXPECT_GE(ewma.value_or(12345), 1);
}

TEST(OnlineEstimators, EndToEndWarmupAndBounds) {
  const unsigned lm = 4;
  OnlineEstimators est(/*num_antennas=*/2, /*num_prb=*/50,
                       /*num_basestations=*/4, lm);

  // Cold: every prediction defers to the caller's fallback / seed.
  const Duration fallback = 900000;
  EXPECT_EQ(est.predict_decode(0, 15, fallback), fallback);
  EXPECT_EQ(est.decode_subtask_or(4321), 4321);
  EXPECT_EQ(est.fft_subtask_or(1234), 1234);
  EXPECT_GE(est.predict_iterations(0), 1u);
  EXPECT_LE(est.predict_iterations(0), lm);

  // Warm up basestation 0 on a steady decode profile.
  for (unsigned i = 0; i < 64; ++i) {
    est.observe_decode(/*bs=*/0, /*mcs=*/15, /*executed_iterations=*/2,
                       /*decode_ns=*/500000, /*decode_subtask_ns=*/20000);
    est.observe_fft(5000);
  }
  EXPECT_TRUE(est.decode_fit().warmed_up());
  EXPECT_EQ(est.decode_samples(), 64u);

  const Duration dec = est.predict_decode(0, 15, fallback);
  EXPECT_NE(dec, fallback);
  EXPECT_GT(dec, 0);
  EXPECT_NEAR(static_cast<double>(est.decode_subtask_or(1)), 20000.0, 1.0);
  EXPECT_NEAR(static_cast<double>(est.fft_subtask_or(1)), 5000.0, 1.0);

  // Iteration predictor learned per basestation: bs 0 saw 2-iteration
  // decodes, bs 3 saw nothing and keeps its prior; both stay in [1, Lm].
  for (unsigned bs : {0u, 3u}) {
    EXPECT_GE(est.predict_iterations(bs), 1u) << "bs=" << bs;
    EXPECT_LE(est.predict_iterations(bs), lm) << "bs=" << bs;
  }
  EXPECT_LE(est.predict_iterations(0), 3u);  // mean 2 + headroom, capped.
}

// --- MeanVarEwma: the z-score backbone of the health anomaly detectors ----

TEST(MeanVarEwma, WarmupGatesTheZScore) {
  MeanVarEwma ewma(/*alpha=*/0.25, /*warmup=*/8);
  // Even a wild outlier scores 0 until `warmup` samples have landed: the
  // health layer must not page off a detector that has seen 3 buckets.
  for (int i = 0; i < 7; ++i) {
    ewma.observe(i % 2 == 0 ? 90.0 : 110.0);
    EXPECT_FALSE(ewma.warmed_up());
    EXPECT_EQ(ewma.zscore(1e6), 0.0) << "sample " << i;
  }
  ewma.observe(90.0);
  EXPECT_TRUE(ewma.warmed_up());
  EXPECT_EQ(ewma.samples(), 8u);
  EXPECT_GT(ewma.zscore(1e6), 3.0);
}

TEST(MeanVarEwma, TracksMeanAndSpreadOfAnOscillatingSignal) {
  MeanVarEwma ewma;
  for (int i = 0; i < 200; ++i) ewma.observe(i % 2 == 0 ? 900.0 : 1100.0);
  EXPECT_NEAR(ewma.mean(), 1000.0, 60.0);
  // The signal's deviation from its mean is always ~100; the EWMA sigma
  // settles in that neighbourhood.
  EXPECT_GT(ewma.stddev(), 50.0);
  EXPECT_LT(ewma.stddev(), 200.0);
  // In-band samples are unremarkable, a collapse to ~0 is loudly anomalous.
  EXPECT_LT(std::abs(ewma.zscore(1000.0)), 1.5);
  EXPECT_LT(ewma.zscore(10.0), -3.0);
  EXPECT_GT(ewma.zscore(2000.0), 3.0);
}

TEST(MeanVarEwma, ConstantSignalNeverDividesByZeroSigma) {
  MeanVarEwma ewma;
  for (int i = 0; i < 100; ++i) ewma.observe(42.0);
  EXPECT_TRUE(ewma.warmed_up());
  EXPECT_EQ(ewma.mean(), 42.0);
  EXPECT_EQ(ewma.stddev(), 0.0);
  // Degenerate spread: zscore stays 0 (finite) rather than +-inf, so a
  // perfectly steady scope can never trip an anomaly rule.
  EXPECT_EQ(ewma.zscore(42.0), 0.0);
  EXPECT_EQ(ewma.zscore(1e9), 0.0);
}

TEST(MeanVarEwma, IgnoresNonFiniteSamples) {
  MeanVarEwma ewma;
  for (int i = 0; i < 20; ++i) ewma.observe(i % 2 == 0 ? 90.0 : 110.0);
  const double mean = ewma.mean();
  const double sd = ewma.stddev();
  const std::size_t n = ewma.samples();
  ewma.observe(std::numeric_limits<double>::quiet_NaN());
  ewma.observe(std::numeric_limits<double>::infinity());
  ewma.observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(ewma.mean(), mean);
  EXPECT_EQ(ewma.stddev(), sd);
  EXPECT_EQ(ewma.samples(), n);
  EXPECT_TRUE(std::isfinite(ewma.zscore(150.0)));
}

TEST(MeanVarEwma, LevelShiftReconverges) {
  MeanVarEwma ewma(/*alpha=*/0.25);
  for (int i = 0; i < 100; ++i) ewma.observe(i % 2 == 0 ? 90.0 : 110.0);
  // Right after a level shift the new plateau is anomalous...
  EXPECT_GT(ewma.zscore(500.0), 3.0);
  // ...but if the detector *does* absorb it (the health layer deliberately
  // withholds anomalous samples; here we feed them), both moments forget
  // the old regime and the new level becomes the baseline.
  for (int i = 0; i < 100; ++i) ewma.observe(i % 2 == 0 ? 490.0 : 510.0);
  EXPECT_NEAR(ewma.mean(), 500.0, 30.0);
  EXPECT_LT(std::abs(ewma.zscore(500.0)), 1.5);
}

}  // namespace
}  // namespace rtopex::model
