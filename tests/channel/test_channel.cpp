#include <gtest/gtest.h>

#include <cmath>

#include "channel/channel.hpp"
#include "common/rng.hpp"

namespace rtopex::channel {
namespace {

phy::IqVector tone(std::size_t n) {
  phy::IqVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * M_PI * 0.05 * static_cast<double>(i);
    v[i] = {static_cast<float>(std::cos(ph)), static_cast<float>(std::sin(ph))};
  }
  return v;
}

double power(const phy::IqVector& v) {
  double p = 0.0;
  for (const auto& x : v) p += std::norm(x);
  return p / static_cast<double>(v.size());
}

TEST(ChannelTest, ProducesOneStreamPerAntenna) {
  Channel ch({20.0, 4, 1, false}, 1);
  const auto rx = ch.apply(tone(1000));
  EXPECT_EQ(rx.size(), 4u);
  for (const auto& s : rx) EXPECT_EQ(s.size(), 1000u);
}

TEST(ChannelTest, SnrIsAccurate) {
  // Unit-gain channel: noise power == signal power / SNR.
  const auto tx = tone(50000);
  for (const double snr_db : {0.0, 10.0, 20.0}) {
    Channel ch({snr_db, 1, 1, false}, 2);
    const auto rx = ch.apply(tx);
    // Compute the noise as the difference from the clean signal.
    double noise_power = 0.0;
    for (std::size_t i = 0; i < tx.size(); ++i)
      noise_power += std::norm(rx[0][i] - tx[i]);
    noise_power /= static_cast<double>(tx.size());
    const double measured_snr =
        10.0 * std::log10(power(tx) / noise_power);
    EXPECT_NEAR(measured_snr, snr_db, 0.3) << "snr_db=" << snr_db;
  }
}

TEST(ChannelTest, AntennasReceiveIndependentNoise) {
  Channel ch({10.0, 2, 1, false}, 3);
  const auto tx = tone(1000);
  const auto rx = ch.apply(tx);
  double diff = 0.0;
  for (std::size_t i = 0; i < tx.size(); ++i)
    diff += std::norm(rx[0][i] - rx[1][i]);
  EXPECT_GT(diff, 1.0);
}

TEST(ChannelTest, FadingPreservesAveragePower) {
  // Rayleigh taps are normalized to unit average power; over many draws the
  // received signal power matches the transmitted power.
  const auto tx = tone(2000);
  Channel ch({40.0, 1, 1, true}, 4);
  double total = 0.0;
  constexpr int kDraws = 200;
  for (int i = 0; i < kDraws; ++i) total += power(ch.apply(tx)[0]);
  EXPECT_NEAR(total / kDraws / power(tx), 1.0, 0.15);
}

TEST(ChannelTest, MultipathSpreadsEnergy) {
  phy::IqVector impulse(100, phy::Complex{0, 0});
  impulse[10] = {1.0f, 0.0f};
  Channel ch({60.0, 1, 4, true}, 5);
  const auto rx = ch.apply(impulse);
  // Energy must appear at delays 10..13.
  int taps_with_energy = 0;
  for (std::size_t i = 10; i < 14; ++i)
    if (std::abs(rx[0][i]) > 1e-3) ++taps_with_energy;
  EXPECT_GE(taps_with_energy, 2);
}

TEST(ChannelTest, DeterministicForSameSeed) {
  const auto tx = tone(500);
  Channel a({15.0, 2, 2, true}, 42);
  Channel b({15.0, 2, 2, true}, 42);
  const auto ra = a.apply(tx);
  const auto rb = b.apply(tx);
  for (unsigned ant = 0; ant < 2; ++ant)
    for (std::size_t i = 0; i < tx.size(); ++i)
      EXPECT_EQ(ra[ant][i], rb[ant][i]);
}

TEST(ChannelTest, RejectsDegenerateConfig) {
  EXPECT_THROW(Channel({10.0, 0, 1, false}, 1), std::invalid_argument);
  EXPECT_THROW(Channel({10.0, 1, 0, false}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::channel
