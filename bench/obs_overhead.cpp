// Self-overhead of the observability layer on the real-time path: the
// per-event cost of Tracer::emit (lock-free SPSC push) and the per-span
// cost of a ProfileSpan begin/end pair under the software counter backend
// (the backend CI containers actually run). Gated in CI's perf-smoke job
// against bench/baselines/BENCH_obs_overhead.json so an observability
// change that slows the hot path fails the build.
//
// Beyond the standard benchmark flags this binary understands
// --json=PATH / --baseline=PATH / --threshold=PCT (see bench_gate.hpp).
#include <benchmark/benchmark.h>

#include "bench_gate.hpp"
#include "obs/profile/profile.hpp"
#include "obs/tracer.hpp"

namespace rtopex::obs {
namespace {

void BM_TraceEvent(benchmark::State& state) {
  // Ring sized to the iteration batch so steady state never overflows; a
  // collector drain per batch keeps the producer fast path honest.
  Tracer tracer(1, /*ring_capacity=*/1 << 16);
  TraceEvent ev;
  ev.kind = EventKind::kStageEnd;
  ev.stage = Stage::kFft;
  ev.bs = 1;
  ev.core = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    ev.ts = static_cast<TimePoint>(++n);
    ev.index = static_cast<std::uint32_t>(n);
    tracer.emit(ev);
    if ((n & 0x7fff) == 0) {
      state.PauseTiming();
      tracer.collect();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceEvent);

void BM_ProfileSpan(benchmark::State& state) {
  profile::ProfileConfig cfg;
  cfg.enabled = true;
  cfg.backend = profile::Backend::kSoftware;
  cfg.max_samples_per_track = 1 << 15;
  profile::Profiler profiler(1, cfg);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto token =
        profiler.begin(0, "bench", Stage::kDecode, 0,
                       static_cast<std::uint32_t>(n));
    profiler.end(0, token, 1, 2);
    if ((++n & 0x3fff) == 0) {
      state.PauseTiming();
      benchmark::DoNotOptimize(profiler.take());
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ProfileSpan);

}  // namespace
}  // namespace rtopex::obs

int main(int argc, char** argv) {
  rtopex::bench::GateMainOptions opts;
  opts.bench_name = "obs_overhead";
  // Span sampling reads OS clocks whose cost varies more run-to-run than
  // pure CPU benches; the gate threshold is correspondingly generous.
  opts.default_threshold_pct = 60.0;
  return rtopex::bench::gate_main(argc, argv, opts);
}
