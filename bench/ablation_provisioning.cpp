// Provisioning / resource-pooling ablation (paper §1: pooling saves ~22%
// of compute; §5 B/C: flexibility to resources and load).
//
// Question: how many basestations can one compute node carry at a 1e-2
// deadline-miss ceiling? Partitioned and RT-OPEX allocate 2 cores per
// basestation by construction; the global scheduler takes a fixed 16-core
// pool. RT-OPEX's migration is what lets the same partitioned allocation
// absorb more load per core.
#include <cstdio>

#include "bench_util.hpp"
#include "core/experiment.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Ablation",
                      "basestations per node at a 1e-2 miss ceiling");

  core::ExperimentConfig cfg;
  cfg.workload.subframes_per_bs = 15000;
  cfg.workload.seed = 1;
  cfg.rtt_half = microseconds(550);
  // A uniformly busy deployment (all cells at the busy preset's level).
  cfg.workload.mean_load_override = 0.48;

  bench::print_row({"basestations", "partitioned", "rt-opex", "global_16"});
  for (unsigned n_bs = 2; n_bs <= 8; ++n_bs) {
    cfg.workload.num_basestations = n_bs;
    const auto work = core::make_workload(cfg);
    const auto run = [&](core::SchedulerKind kind) {
      cfg.scheduler = kind;
      cfg.global.num_cores = 16;
      return core::run_scheduler(cfg, work).metrics.miss_rate();
    };
    char b[3][32];
    std::snprintf(b[0], 32, "%.2e", run(core::SchedulerKind::kPartitioned));
    std::snprintf(b[1], 32, "%.2e", run(core::SchedulerKind::kRtOpex));
    std::snprintf(b[2], 32, "%.2e", run(core::SchedulerKind::kGlobal));
    bench::print_row({std::to_string(n_bs), b[0], b[1], b[2]});
  }
  std::printf("\npartitioned/rt-opex use 2 cores per basestation (so the\n"
              "rightmost rows compare 16-core deployments across policies);\n"
              "rt-opex holds the miss ceiling at every scale because each\n"
              "added basestation also adds migration targets.\n");
  return 0;
}
