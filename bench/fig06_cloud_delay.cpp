// Fig. 6 — Distribution of the one-way cloud network delay for 1 GbE and
// 10 GbE connections: mean ~0.15 ms with a long tail (~1 in 1e4 packets
// above 0.25 ms).
//
// Key metrics are emitted as BENCH_fig06.json into --out DIR (default: the
// working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "transport/transport.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 6", "cloud network one-way delay distribution");

  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  constexpr int kSamples = 2'000'000;
  bench::JsonValue link_rows = bench::JsonValue::array();
  bench::print_row({"link", "mean_us", "p50", "p99", "p99.99", "max",
                    "P(>250us)"});
  for (const bool ten_gbe : {false, true}) {
    const auto params = ten_gbe ? transport::cloud_params_10gbe()
                                : transport::cloud_params_1gbe();
    const transport::CloudNetworkModel model(params);
    Rng rng(ten_gbe ? 2 : 1);
    std::vector<double> samples;
    samples.reserve(kSamples);
    std::size_t above = 0;
    for (int i = 0; i < kSamples; ++i) {
      const double us = to_us(model.sample_one_way(rng));
      samples.push_back(us);
      if (us > 250.0) ++above;
    }
    const EmpiricalCdf cdf(std::move(samples));
    char tail[32];
    std::snprintf(tail, sizeof(tail), "%.1e",
                  static_cast<double>(above) / kSamples);
    RunningStats s;
    for (const double v : cdf.sorted_samples()) s.add(v);
    bench::print_row({ten_gbe ? "10GbE" : "1GbE", bench::fmt(s.mean(), 0),
                      bench::fmt(cdf.quantile(0.5), 0),
                      bench::fmt(cdf.quantile(0.99), 0),
                      bench::fmt(cdf.quantile(0.9999), 0),
                      bench::fmt(s.max(), 0), tail});
    link_rows.push(bench::JsonValue::object()
                       .set("link", ten_gbe ? "10GbE" : "1GbE")
                       .set("mean_us", s.mean())
                       .set("p50_us", cdf.quantile(0.5))
                       .set("p99_us", cdf.quantile(0.99))
                       .set("p9999_us", cdf.quantile(0.9999))
                       .set("max_us", s.max())
                       .set("tail_prob_above_250us",
                            static_cast<double>(above) / kSamples));
  }
  std::printf("\npaper: mean ~150 us; ~1 in 1e4 packets above 250 us on both links\n");

  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig06_cloud_delay")
      .set("config",
           bench::JsonValue::object().set("samples",
                                          static_cast<double>(kSamples)))
      .set("links", std::move(link_rows));
  bench::write_bench_json(out_dir + "/BENCH_fig06.json", root);
  std::printf("wrote %s/BENCH_fig06.json\n", out_dir.c_str());
  return 0;
}
