// Fig. 6 — Distribution of the one-way cloud network delay for 1 GbE and
// 10 GbE connections: mean ~0.15 ms with a long tail (~1 in 1e4 packets
// above 0.25 ms).
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "transport/transport.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Figure 6", "cloud network one-way delay distribution");

  constexpr int kSamples = 2'000'000;
  bench::print_row({"link", "mean_us", "p50", "p99", "p99.99", "max",
                    "P(>250us)"});
  for (const bool ten_gbe : {false, true}) {
    const auto params = ten_gbe ? transport::cloud_params_10gbe()
                                : transport::cloud_params_1gbe();
    const transport::CloudNetworkModel model(params);
    Rng rng(ten_gbe ? 2 : 1);
    std::vector<double> samples;
    samples.reserve(kSamples);
    std::size_t above = 0;
    for (int i = 0; i < kSamples; ++i) {
      const double us = to_us(model.sample_one_way(rng));
      samples.push_back(us);
      if (us > 250.0) ++above;
    }
    const EmpiricalCdf cdf(std::move(samples));
    char tail[32];
    std::snprintf(tail, sizeof(tail), "%.1e",
                  static_cast<double>(above) / kSamples);
    RunningStats s;
    for (const double v : cdf.sorted_samples()) s.add(v);
    bench::print_row({ten_gbe ? "10GbE" : "1GbE", bench::fmt(s.mean(), 0),
                      bench::fmt(cdf.quantile(0.5), 0),
                      bench::fmt(cdf.quantile(0.99), 0),
                      bench::fmt(cdf.quantile(0.9999), 0),
                      bench::fmt(s.max(), 0), tail});
  }
  std::printf("\npaper: mean ~150 us; ~1 in 1e4 packets above 250 us on both links\n");
  return 0;
}
