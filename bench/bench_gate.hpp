// Shared scaffolding for the google-benchmark binaries with a custom
// main(): capture per-benchmark timings, write them as a bench/baselines-
// style BENCH_<name>.json, and gate against a committed baseline (CI's
// perf-smoke job fails the build on regressions). Used by micro_phy,
// micro_sched and obs_overhead.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace rtopex::bench {

struct CapturedRun {
  std::string name;
  double real_ns = 0.0;
  double cpu_ns = 0.0;
};

/// Console reporter that also keeps per-iteration-group results so main()
/// can emit the BENCH_<name>.json artifact and run the baseline gate.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters = static_cast<double>(run.iterations);
      captured.push_back({run.benchmark_name(),
                          run.real_accumulated_time / iters * 1e9,
                          run.cpu_accumulated_time / iters * 1e9});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<CapturedRun> captured;
};

/// Minimal extractor for the baseline JSON these binaries themselves write
/// (objects with "name"/"real_ns"/"cpu_ns" fields).
inline std::map<std::string, CapturedRun> read_baseline(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open baseline: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::map<std::string, CapturedRun> entries;
  const std::string name_key = "\"name\":\"";
  const auto number_after = [&](std::size_t from, const std::string& key) {
    const std::size_t at = text.find(key, from);
    if (at == std::string::npos) return -1.0;
    return std::stod(text.substr(at + key.size()));
  };
  for (std::size_t pos = text.find(name_key); pos != std::string::npos;
       pos = text.find(name_key, pos + 1)) {
    const std::size_t begin = pos + name_key.size();
    const std::size_t end = text.find('"', begin);
    if (end == std::string::npos) break;
    CapturedRun entry;
    entry.name = text.substr(begin, end - begin);
    entry.real_ns = number_after(end, "\"real_ns\":");
    entry.cpu_ns = number_after(end, "\"cpu_ns\":");
    if (entry.cpu_ns > 0.0) entries[entry.name] = entry;
  }
  return entries;
}

/// BENCH_<bench_name>.json with the same shape the table benches emit:
/// root { bench, config{simd}, results[{name, real_ns, cpu_ns}] }.
inline void write_results_json(const std::string& path,
                               const std::string& bench_name,
                               const std::vector<CapturedRun>& runs) {
  JsonValue root = JsonValue::object();
  root.set("bench", bench_name);
  JsonValue config = JsonValue::object();
#ifdef RTOPEX_SIMD
  config.set("simd", JsonValue::boolean(true));
#else
  config.set("simd", JsonValue::boolean(false));
#endif
  root.set("config", std::move(config));
  JsonValue results = JsonValue::array();
  for (const auto& run : runs) {
    JsonValue entry = JsonValue::object();
    entry.set("name", run.name);
    entry.set("real_ns", run.real_ns);
    entry.set("cpu_ns", run.cpu_ns);
    results.push(std::move(entry));
  }
  root.set("results", std::move(results));
  write_bench_json(path, root);
}

/// Returns the number of benchmarks whose cpu time regressed beyond the
/// threshold. Benchmarks missing from either side are reported, not failed
/// (the baseline predates newly added benchmarks).
inline int gate_against_baseline(
    const std::vector<CapturedRun>& runs,
    const std::map<std::string, CapturedRun>& baseline, double threshold_pct) {
  int regressions = 0;
  std::printf("\nPerf gate (threshold +%.0f%% cpu time vs baseline):\n",
              threshold_pct);
  std::printf("%-28s %14s %14s %9s\n", "benchmark", "baseline_ns", "cpu_ns",
              "ratio");
  for (const auto& run : runs) {
    const auto it = baseline.find(run.name);
    if (it == baseline.end()) {
      std::printf("%-28s %14s %14.0f %9s\n", run.name.c_str(), "-",
                  run.cpu_ns, "new");
      continue;
    }
    const double ratio = run.cpu_ns / it->second.cpu_ns;
    const bool bad = ratio > 1.0 + threshold_pct / 100.0;
    std::printf("%-28s %14.0f %14.0f %8.2fx%s\n", run.name.c_str(),
                it->second.cpu_ns, run.cpu_ns, ratio,
                bad ? "  REGRESSION" : "");
    if (bad) ++regressions;
  }
  return regressions;
}

/// The whole custom main() the gate-capable benchmark binaries share:
/// strips --json=/--baseline=/--threshold= (and an optional extra flag the
/// caller handles via `extra`), hands the rest to google-benchmark, then
/// writes the JSON artifact and runs the gate. Returns the process exit
/// code.
struct GateMainOptions {
  std::string bench_name;
  double default_threshold_pct = 25.0;
  /// Called with the value of --<extra_flag>=VALUE after the benchmarks
  /// ran (empty string means the flag was absent).
  std::string extra_flag;
  std::function<void(const std::string&)> extra_handler;
};

inline int gate_main(int argc, char** argv, const GateMainOptions& opts) {
  std::string json_path;
  std::string baseline_path;
  std::string extra_value;
  double threshold_pct = opts.default_threshold_pct;
  const std::string extra_prefix =
      opts.extra_flag.empty() ? "" : "--" + opts.extra_flag + "=";
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::stod(arg.substr(12));
    } else if (!extra_prefix.empty() && arg.rfind(extra_prefix, 0) == 0) {
      extra_value = arg.substr(extra_prefix.size());
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (opts.extra_handler && !extra_value.empty())
    opts.extra_handler(extra_value);

  if (!json_path.empty()) {
    write_results_json(json_path, opts.bench_name, reporter.captured);
    std::printf("wrote %s (%zu benchmarks)\n", json_path.c_str(),
                reporter.captured.size());
  }
  if (!baseline_path.empty()) {
    const auto baseline = read_baseline(baseline_path);
    const int regressions =
        gate_against_baseline(reporter.captured, baseline, threshold_pct);
    if (regressions > 0) {
      std::fprintf(stderr, "perf gate: %d regression(s) beyond +%.0f%%\n",
                   regressions, threshold_pct);
      return 1;
    }
    std::printf("perf gate: ok\n");
  }
  return 0;
}

}  // namespace rtopex::bench
