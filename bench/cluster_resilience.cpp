// Cluster resilience benchmark -> BENCH_cluster.json.
//
// Node-kill campaigns at increasing basestation counts: an 8-node cluster
// absorbs a fail-stop node kill mid-run at moderate load. For each scale the
// bench reports the end-to-end rollup, the recovery-time histogram, and the
// *steady-state* miss rate after re-homing (subframes started >= 100 ms past
// detection, read off the forced node timelines). Gates (exit 2 on failure):
//   * the cluster conservation law holds exactly at every point, and
//   * the post-recovery steady-state miss rate stays under --gate
//     (default 1e-2) at every point — the survivors, each hosting one
//     adopted basestation on unprovisioned slots, must ride out the extra
//     load at moderate offered load.
// A placement comparison (no failures) at the middle scale records how the
// three policies spread load; informational, not gated.
//
//   $ ./cluster_resilience [--quick] [--gate R] [--out DIR]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Cluster resilience",
                      "node-kill campaigns across cluster scales");

  std::string out_dir;
  double gate = 1e-2;
  std::size_t subframes = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      subframes = 1500;
    } else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--gate R] [--out DIR]\n",
                   argv[0]);
      return 1;
    }
  }

  core::ExperimentConfig node;
  node.scheduler = core::SchedulerKind::kRtOpex;
  node.workload.subframes_per_bs = subframes;
  const double campaign_load = 0.35;
  node.workload.mean_load_override = campaign_load;
  node.workload.seed = 7;

  cluster::ClusterConfig cfg;
  cfg.num_nodes = 8;
  // Headroom-aware placement balances WCET demand across nodes, so a single
  // kill re-homes at most ceil(N/M) basestations onto each survivor — the
  // configuration the <1% steady-state gate is about. (Static hash can pile
  // 8 of 32 basestations on one node; killing that node overloads the
  // survivors far past what re-homing can absorb.)
  cfg.placement = cluster::PlacementPolicy::kHeadroomAware;
  const TimePoint kill_at = static_cast<TimePoint>(subframes / 2) *
                            kSubframePeriod;

  bool gate_ok = true;
  bench::JsonValue rows = bench::JsonValue::array();
  bench::print_row({"bs", "killed", "miss_rate", "steady_miss", "rehomed",
                    "failure_lost", "recovery_p50_ms", "conserved"});
  // >= 3 basestations per node: with only 2, one basestation is half a
  // node's capacity and a single kill oversubscribes each survivor 1.5x —
  // no placement can absorb that; re-homing granularity needs N/M >= 3.
  for (const unsigned num_bs : {24u, 32u, 48u}) {
    node.workload.num_basestations = num_bs;
    const auto work = core::make_workload(node);

    // Kill the node holding the most basestations — the worst single kill
    // this placement admits.
    const auto placement = cluster::make_placement(cfg, num_bs, work);
    std::vector<unsigned> residents(cfg.num_nodes, 0);
    for (const unsigned n : placement) ++residents[n];
    const unsigned victim = static_cast<unsigned>(
        std::max_element(residents.begin(), residents.end()) -
        residents.begin());

    cfg.failures = {{victim, kill_at}};
    cluster::ClusterSim sim(node, cfg);
    const cluster::ClusterResult result = sim.run(work);
    const cluster::ClusterMetrics& m = result.metrics;

    // Steady-state: subframes started >= 100 ms past detection, from the
    // per-node timelines (forced on by the failure campaign).
    TimePoint settle = 0;
    for (const cluster::NodeReport& nr : m.nodes)
      if (nr.detected_at >= 0)
        settle = std::max(settle, nr.detected_at + milliseconds(100));
    std::size_t steady_total = 0, steady_miss = 0;
    for (const cluster::NodeReport& nr : m.nodes)
      for (const auto& entry : nr.metrics.timeline)
        if (entry.start >= settle) {
          ++steady_total;
          if (entry.missed) ++steady_miss;
        }
    const double steady_rate =
        steady_total == 0 ? 1.0
                          : static_cast<double>(steady_miss) /
                                static_cast<double>(steady_total);

    const bool conserved = m.conserved();
    gate_ok = gate_ok && conserved && steady_rate < gate &&
              m.recovery_ms.count() == 1;
    bench::print_row({std::to_string(num_bs), std::to_string(victim),
                      bench::fmt(m.miss_rate(), 4),
                      bench::fmt(steady_rate, 4),
                      std::to_string(m.rehomed_basestations),
                      std::to_string(m.failure_lost),
                      bench::fmt(m.recovery_ms.p50(), 1),
                      conserved ? "yes" : "NO"});
    rows.push(bench::JsonValue::object()
                  .set("basestations", static_cast<double>(num_bs))
                  .set("killed_node", static_cast<double>(victim))
                  .set("offered", static_cast<double>(m.offered))
                  .set("miss_rate", m.miss_rate())
                  .set("steady_state_miss_rate", steady_rate)
                  .set("rehomed_basestations",
                       static_cast<double>(m.rehomed_basestations))
                  .set("rehomed_subframes",
                       static_cast<double>(m.rehomed_subframes))
                  .set("failure_lost", static_cast<double>(m.failure_lost))
                  .set("shed", static_cast<double>(m.shed))
                  .set("recovery_p50_ms", m.recovery_ms.p50())
                  .set("recovery_max_ms", m.recovery_ms.max())
                  .set("conserved", bench::JsonValue::boolean(conserved)));
  }

  // Placement comparison at the middle scale, failure-free: how evenly the
  // three policies spread the offered load (worst node's miss rate).
  node.workload.num_basestations = 32;
  node.workload.mean_load_override = 0.55;  // differentiate the policies
  const auto work32 = core::make_workload(node);
  cfg.failures.clear();
  bench::JsonValue placements = bench::JsonValue::array();
  std::printf("\nplacement comparison (32 basestations, no failures):\n");
  for (const auto policy : {cluster::PlacementPolicy::kStaticHash,
                            cluster::PlacementPolicy::kLoadAware,
                            cluster::PlacementPolicy::kHeadroomAware}) {
    cfg.placement = policy;
    cluster::ClusterSim sim(node, cfg);
    const cluster::ClusterResult result = sim.run(work32);
    const cluster::ClusterMetrics& m = result.metrics;
    double worst = 0.0;
    for (const cluster::NodeReport& nr : m.nodes)
      worst = std::max(worst, nr.metrics.miss_rate());
    std::printf("  %-16s overall %.2e  worst node %.2e  conserved %s\n",
                cluster::to_string(policy), m.miss_rate(), worst,
                m.conserved() ? "yes" : "NO");
    gate_ok = gate_ok && m.conserved();
    placements.push(bench::JsonValue::object()
                        .set("policy", cluster::to_string(policy))
                        .set("miss_rate", m.miss_rate())
                        .set("worst_node_miss_rate", worst)
                        .set("conserved",
                             bench::JsonValue::boolean(m.conserved())));
  }
  cfg.placement = cluster::PlacementPolicy::kStaticHash;

  const std::string json_dir = out_dir.empty() ? "." : out_dir;
  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "cluster_resilience")
      .set("config",
           bench::JsonValue::object()
               .set("nodes", static_cast<double>(cfg.num_nodes))
               .set("subframes_per_bs", static_cast<double>(subframes))
               .set("mean_load", campaign_load)
               .set("seed", static_cast<double>(node.workload.seed))
               .set("kill_at_ms", to_ms(kill_at))
               .set("detection_timeout_ms", to_ms(cfg.detection_timeout))
               .set("gate_steady_miss_rate", gate))
      .set("rows", std::move(rows))
      .set("placements", std::move(placements))
      .set("gate_ok", bench::JsonValue::boolean(gate_ok));
  bench::write_bench_json(json_dir + "/BENCH_cluster.json", root);
  std::printf("\nwrote %s/BENCH_cluster.json\n", json_dir.c_str());

  if (!gate_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: conservation violated, recovery histogram "
                 "empty, or steady-state miss rate >= %.0e after re-homing\n",
                 gate);
    return 2;
  }
  return 0;
}
