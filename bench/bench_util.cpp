#include "bench_util.hpp"

#include <cstdio>
#include <map>
#include <stdexcept>

#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "common/thread_utils.hpp"
#include "phy/uplink_rx.hpp"

namespace rtopex::bench {

namespace {

void escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ != Kind::kObject) *this = object();
  for (auto& [k, v] : fields_)
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (kind_ != Kind::kArray) *this = array();
  items_.push_back(std::move(value));
  return items_.back();
}

std::string JsonValue::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      // %.12g keeps integer counts and nanosecond sums exact while staying
      // compact for rates; JSON has no infinities, so clamp those to null.
      char buf[40];
      if (number_ != number_ || number_ > 1e308 || number_ < -1e308) {
        out = "null";
      } else {
        std::snprintf(buf, sizeof buf, "%.12g", number_);
        out = buf;
      }
      break;
    }
    case Kind::kString:
      out += '"';
      escape_into(out, string_);
      out += '"';
      break;
    case Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        out += items_[i].dump();
      }
      out += ']';
      break;
    case Kind::kObject:
      out += '{';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ',';
        out += '"';
        escape_into(out, fields_[i].first);
        out += "\":";
        out += fields_[i].second.dump();
      }
      out += '}';
      break;
  }
  return out;
}

void write_bench_json(const std::string& path, const JsonValue& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("write_bench_json: cannot open " + path);
  const std::string text = root.dump();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

void warn_on_trace_drops(const obs::TraceStore& store,
                         const std::string& context) {
  const std::string what = obs::describe_trace_drops(store);
  if (what.empty()) return;
  std::fprintf(stderr,
               "WARNING: %s: %s — miss-cause counts may undercount\n",
               context.c_str(), what.c_str());
}

void print_banner(const std::string& figure, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("================================================================\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf(i == 0 ? "%-22s" : "%14s", cells[i].c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::vector<std::string> summary_cells(const std::string& label,
                                       const obs::Histogram& hist,
                                       const std::vector<double>& quantiles,
                                       int precision) {
  std::vector<std::string> cells = {label};
  if (hist.count() == 0) {
    cells.insert(cells.end(), quantiles.size() + 1, "-");
    return cells;
  }
  cells.push_back(fmt(hist.mean(), precision));
  for (const double q : quantiles)
    cells.push_back(fmt(hist.percentile(q), precision));
  return cells;
}

std::vector<model::TimingMeasurement> measure_phy_chain(
    const PhyMeasurementConfig& config) {
  std::vector<model::TimingMeasurement> out;
  Rng rng(config.seed);
  for (const unsigned antennas : config.antenna_counts) {
    phy::UplinkConfig cfg;
    cfg.bandwidth = config.bandwidth;
    cfg.num_antennas = antennas;
    cfg.max_iterations = config.max_iterations;
    const phy::UplinkTransmitter tx(cfg);
    const phy::UplinkRxProcessor rx(cfg);
    const unsigned nprb = cfg.num_prb();
    for (const unsigned mcs : config.mcs_values) {
      for (const double snr : config.snr_values_db) {
        // OS scheduling noise on shared/single-core hosts can dwarf the
        // signal, so each (config, L) cell keeps the *minimum* over its
        // repetitions (each repetition itself is re-timed best-of-2).
        std::map<unsigned, double> best_per_l;
        for (unsigned rep = 0; rep < config.repetitions; ++rep) {
          const phy::TxSubframe sf =
              tx.transmit(mcs, /*subframe_index=*/rep, rng.next());
          channel::ChannelConfig ch;
          ch.snr_db = snr;
          ch.num_rx_antennas = antennas;
          const auto samples =
              channel::pass_through_channel(sf.samples, ch, rng.next());
          double best_us = 1e18;
          unsigned iterations = 0;
          for (int timing_pass = 0; timing_pass < 2; ++timing_pass) {
            const std::int64_t t0 = monotonic_ns();
            const phy::UplinkRxResult result =
                rx.process(samples, mcs, sf.subframe_index);
            const std::int64_t t1 = monotonic_ns();
            best_us = std::min(best_us,
                               static_cast<double>(t1 - t0) / 1000.0);
            iterations = result.iterations;
          }
          const auto it = best_per_l.find(iterations);
          if (it == best_per_l.end())
            best_per_l[iterations] = best_us;
          else
            it->second = std::min(it->second, best_us);
        }
        for (const auto& [l, us] : best_per_l) {
          model::TimingMeasurement m;
          m.antennas = antennas;
          m.modulation_order = phy::modulation_order(mcs);
          m.subcarrier_load = phy::subcarrier_load(mcs, nprb);
          m.iterations = l;
          m.time_us = us;
          out.push_back(m);
        }
      }
    }
  }
  return out;
}

}  // namespace rtopex::bench
