#include "bench_util.hpp"

#include <cstdio>
#include <map>

#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "common/thread_utils.hpp"
#include "phy/uplink_rx.hpp"

namespace rtopex::bench {

void print_banner(const std::string& figure, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("================================================================\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf(i == 0 ? "%-22s" : "%14s", cells[i].c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::vector<std::string> summary_cells(const std::string& label,
                                       const obs::Histogram& hist,
                                       const std::vector<double>& quantiles,
                                       int precision) {
  std::vector<std::string> cells = {label};
  if (hist.count() == 0) {
    cells.insert(cells.end(), quantiles.size() + 1, "-");
    return cells;
  }
  cells.push_back(fmt(hist.mean(), precision));
  for (const double q : quantiles)
    cells.push_back(fmt(hist.percentile(q), precision));
  return cells;
}

std::vector<model::TimingMeasurement> measure_phy_chain(
    const PhyMeasurementConfig& config) {
  std::vector<model::TimingMeasurement> out;
  Rng rng(config.seed);
  for (const unsigned antennas : config.antenna_counts) {
    phy::UplinkConfig cfg;
    cfg.bandwidth = config.bandwidth;
    cfg.num_antennas = antennas;
    cfg.max_iterations = config.max_iterations;
    const phy::UplinkTransmitter tx(cfg);
    const phy::UplinkRxProcessor rx(cfg);
    const unsigned nprb = cfg.num_prb();
    for (const unsigned mcs : config.mcs_values) {
      for (const double snr : config.snr_values_db) {
        // OS scheduling noise on shared/single-core hosts can dwarf the
        // signal, so each (config, L) cell keeps the *minimum* over its
        // repetitions (each repetition itself is re-timed best-of-2).
        std::map<unsigned, double> best_per_l;
        for (unsigned rep = 0; rep < config.repetitions; ++rep) {
          const phy::TxSubframe sf =
              tx.transmit(mcs, /*subframe_index=*/rep, rng.next());
          channel::ChannelConfig ch;
          ch.snr_db = snr;
          ch.num_rx_antennas = antennas;
          const auto samples =
              channel::pass_through_channel(sf.samples, ch, rng.next());
          double best_us = 1e18;
          unsigned iterations = 0;
          for (int timing_pass = 0; timing_pass < 2; ++timing_pass) {
            const std::int64_t t0 = monotonic_ns();
            const phy::UplinkRxResult result =
                rx.process(samples, mcs, sf.subframe_index);
            const std::int64_t t1 = monotonic_ns();
            best_us = std::min(best_us,
                               static_cast<double>(t1 - t0) / 1000.0);
            iterations = result.iterations;
          }
          const auto it = best_per_l.find(iterations);
          if (it == best_per_l.end())
            best_per_l[iterations] = best_us;
          else
            it->second = std::min(it->second, best_us);
        }
        for (const auto& [l, us] : best_per_l) {
          model::TimingMeasurement m;
          m.antennas = antennas;
          m.modulation_order = phy::modulation_order(mcs);
          m.subcarrier_load = phy::subcarrier_load(mcs, nprb);
          m.iterations = l;
          m.time_us = us;
          out.push_back(m);
        }
      }
    }
  }
  return out;
}

}  // namespace rtopex::bench
