// Fig. 19 — The global scheduler as cores are varied: the miss rate stops
// improving around the queueing knee and can worsen slightly beyond it
// (cache thrashing: more cores -> each core sees a given basestation less
// often -> more cold-cache dispatches). The right panel shows the MCS-27
// processing-time distribution widening at 16 cores vs 8.
//
// Key metrics (per-core-count miss rates and latency quantiles) are
// emitted as BENCH_fig19.json into --out DIR (default: the working
// directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 19", "global scheduler vs core count");

  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 30000;
  cfg.workload.seed = 1;
  // Heavier conditions than Fig. 15 (lower SNR -> more turbo iterations)
  // push the queueing knee toward the paper's 6-8 cores.
  cfg.workload.snr_db = 24.0;
  cfg.rtt_half = microseconds(500);
  cfg.scheduler = core::SchedulerKind::kGlobal;

  const auto work = core::make_workload(cfg);

  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig19_global_cores")
      .set("config",
           bench::JsonValue::object()
               .set("basestations",
                    static_cast<double>(cfg.workload.num_basestations))
               .set("subframes_per_bs",
                    static_cast<double>(cfg.workload.subframes_per_bs))
               .set("seed", static_cast<double>(cfg.workload.seed))
               .set("snr_db", cfg.workload.snr_db)
               .set("rtt_half_us", to_us(cfg.rtt_half)));

  std::printf("\n(left) deadline-miss rate vs cores\n");
  bench::print_row({"cores", "miss_rate"});
  bench::JsonValue sweep = bench::JsonValue::array();
  for (const unsigned cores : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    cfg.global.num_cores = cores;
    const auto r = core::run_scheduler(cfg, work);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", r.metrics.miss_rate());
    bench::print_row({std::to_string(cores), buf});
    sweep.push(bench::JsonValue::object()
                   .set("cores", static_cast<double>(cores))
                   .set("miss_rate", r.metrics.miss_rate())
                   .set("misses",
                        static_cast<double>(r.metrics.deadline_misses)));
  }
  root.set("cores_sweep", std::move(sweep));

  // At MCS 27 the WCET slack check drops everything at this budget, so the
  // distribution is shown at the heaviest admissible MCS.
  std::printf("\n(right) MCS-19 processing time distribution, 8 vs 16 cores\n");
  cfg.workload.fixed_mcs = 19;
  cfg.workload.snr_db = 30.0;
  cfg.workload.subframes_per_bs = 10000;
  const auto work27 = core::make_workload(cfg);
  bench::print_row({"cores", "mean_us", "p50_us", "p90_us", "p99_us"});
  bench::JsonValue dist = bench::JsonValue::array();
  for (const unsigned cores : {8u, 16u}) {
    cfg.global.num_cores = cores;
    const auto r = core::run_scheduler(cfg, work27);
    bench::print_row(bench::summary_cells(std::to_string(cores),
                                          r.metrics.processing_us_hist,
                                          {0.5, 0.9, 0.99}));
    const auto& hist = r.metrics.processing_us_hist;
    dist.push(bench::JsonValue::object()
                  .set("cores", static_cast<double>(cores))
                  .set("mean_us", hist.mean())
                  .set("p50_us", hist.p50())
                  .set("p90_us", hist.percentile(0.9))
                  .set("p99_us", hist.p99()));
  }
  root.set("mcs19_distribution", std::move(dist));
  const std::string json_dir = out_dir.empty() ? "." : out_dir;
  bench::write_bench_json(json_dir + "/BENCH_fig19.json", root);
  std::printf("\nwrote %s/BENCH_fig19.json\n", json_dir.c_str());
  std::printf("\npaper: performance saturates (and slightly worsens) beyond 8\n"
              "cores; at 16 cores >10%% of subframes take ~80 us longer.\n");
  return 0;
}
