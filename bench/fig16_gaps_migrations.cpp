// Fig. 16 — Gaps and migrations in RT-OPEX:
//   left : CDF of the idle gaps the partitioned schedule leaves on each
//          core (processing-time variation only, fixed transport);
//   right: fraction of FFT and decode subtasks RT-OPEX migrates, vs RTT/2.
//
//   --out DIR    also write the gap distribution CSV plus a Prometheus
//                .prom metrics snapshot into DIR.
//
// Key metrics (gap quantiles, per-RTT migration fractions) are emitted as
// BENCH_fig16.json into --out DIR (default: the working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/results_io.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 16", "partitioned gaps and RT-OPEX migrations");

  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 30000;
  cfg.workload.seed = 1;
  cfg.record_samples = true;  // exact gap CDF for the left panel

  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig16_gaps_migrations")
      .set("config",
           bench::JsonValue::object()
               .set("basestations",
                    static_cast<double>(cfg.workload.num_basestations))
               .set("subframes_per_bs",
                    static_cast<double>(cfg.workload.subframes_per_bs))
               .set("seed", static_cast<double>(cfg.workload.seed)));

  std::printf("\n(left) partitioned idle-gap CDF at RTT/2 = 450 us\n");
  cfg.rtt_half = microseconds(450);
  cfg.scheduler = core::SchedulerKind::kPartitioned;
  {
    const auto result = core::run_experiment(cfg);
    const EmpiricalCdf cdf(result.metrics.gap_us);
    bench::print_row({"gap_us", "cdf"});
    for (const double g : {100.0, 250.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0})
      bench::print_row({bench::fmt(g, 0), bench::fmt(cdf(g), 3)});
    std::printf("fraction of gaps > 500 us: %.2f "
                "(paper: ~0.6 of subframes see gaps > 500 us)\n",
                1.0 - cdf(500.0));
    const auto& gaps = result.metrics.gap_us_hist;
    root.set("gaps",
             bench::JsonValue::object()
                 .set("rtt_half_us", 450.0)
                 .set("count", static_cast<double>(gaps.count()))
                 .set("mean_us", gaps.mean())
                 .set("p50_us", gaps.p50())
                 .set("p99_us", gaps.p99())
                 .set("fraction_over_500us", 1.0 - cdf(500.0)));
    if (!out_dir.empty()) {
      core::write_distribution_csv(out_dir + "/fig16_gap_us.csv",
                                   result.metrics.gap_us_hist);
      core::write_metrics_prom(out_dir + "/fig16_partitioned.prom", result);
      std::printf("wrote %s/fig16_gap_us.csv and fig16_partitioned.prom\n",
                  out_dir.c_str());
    }
  }

  std::printf("\n(right) fraction of subtasks migrated by RT-OPEX\n");
  bench::print_row({"rtt/2_us", "fft_migrated", "decode_migrated",
                    "recoveries"});
  cfg.scheduler = core::SchedulerKind::kRtOpex;
  bench::JsonValue rows = bench::JsonValue::array();
  for (int rtt_us = 400; rtt_us <= 700; rtt_us += 50) {
    cfg.rtt_half = microseconds(rtt_us);
    const auto result = core::run_experiment(cfg);
    bench::print_row({std::to_string(rtt_us),
                      bench::fmt(result.metrics.fft_migration_fraction(), 3),
                      bench::fmt(result.metrics.decode_migration_fraction(), 3),
                      std::to_string(result.metrics.recoveries)});
    rows.push(
        bench::JsonValue::object()
            .set("rtt_half_us", static_cast<double>(rtt_us))
            .set("fft_migrated", result.metrics.fft_migration_fraction())
            .set("decode_migrated",
                 result.metrics.decode_migration_fraction())
            .set("recoveries",
                 static_cast<double>(result.metrics.recoveries)));
  }
  root.set("migrations", std::move(rows));
  const std::string json_dir = out_dir.empty() ? "." : out_dir;
  bench::write_bench_json(json_dir + "/BENCH_fig16.json", root);
  std::printf("\nwrote %s/BENCH_fig16.json\n", json_dir.c_str());
  std::printf("\npaper: ~20%% of decode subtasks migrated below 500 us; FFT\n"
              "migration persists as gaps narrow with rising RTT.\n");
  return 0;
}
