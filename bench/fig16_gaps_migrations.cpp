// Fig. 16 — Gaps and migrations in RT-OPEX:
//   left : CDF of the idle gaps the partitioned schedule leaves on each
//          core (processing-time variation only, fixed transport);
//   right: fraction of FFT and decode subtasks RT-OPEX migrates, vs RTT/2.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Figure 16", "partitioned gaps and RT-OPEX migrations");

  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 30000;
  cfg.workload.seed = 1;

  std::printf("\n(left) partitioned idle-gap CDF at RTT/2 = 450 us\n");
  cfg.rtt_half = microseconds(450);
  cfg.scheduler = core::SchedulerKind::kPartitioned;
  {
    const auto result = core::run_experiment(cfg);
    const EmpiricalCdf cdf(result.metrics.gap_us);
    bench::print_row({"gap_us", "cdf"});
    for (const double g : {100.0, 250.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0})
      bench::print_row({bench::fmt(g, 0), bench::fmt(cdf(g), 3)});
    std::printf("fraction of gaps > 500 us: %.2f "
                "(paper: ~0.6 of subframes see gaps > 500 us)\n",
                1.0 - cdf(500.0));
  }

  std::printf("\n(right) fraction of subtasks migrated by RT-OPEX\n");
  bench::print_row({"rtt/2_us", "fft_migrated", "decode_migrated",
                    "recoveries"});
  cfg.scheduler = core::SchedulerKind::kRtOpex;
  for (int rtt_us = 400; rtt_us <= 700; rtt_us += 50) {
    cfg.rtt_half = microseconds(rtt_us);
    const auto result = core::run_experiment(cfg);
    bench::print_row({std::to_string(rtt_us),
                      bench::fmt(result.metrics.fft_migration_fraction(), 3),
                      bench::fmt(result.metrics.decode_migration_fraction(), 3),
                      std::to_string(result.metrics.recoveries)});
  }
  std::printf("\npaper: ~20%% of decode subtasks migrated below 500 us; FFT\n"
              "migration persists as gaps narrow with rising RTT.\n");
  return 0;
}
