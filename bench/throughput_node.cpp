// Throughput-mode node benchmark: drives the real-thread NodeRuntime
// end-to-end and reports what the FlexRAN-style batched configuration buys
// over the default latency-oriented one. Three measurements:
//
//   1. Saturating pipeline rate (deadlines off, one worker, arrival period
//      far below service time): subframes/sec, wall ns/subframe and
//      process-CPU ns/subframe for the batched+pooled+pinned configuration
//      vs the plain batch-of-1 runtime. A single worker makes the figure
//      "work per subframe through one core" — what batching changes —
//      instead of a measurement of worker time-slicing; the win check and
//      the baseline gate use the CPU figure, which additionally survives
//      noisy hosts where wall time measures the kernel scheduler.
//   2. Per-stage mean microseconds from the batched run's subframe records.
//   3. Capacity sweep: the largest basestation count that stays under a 1%
//      deadline-miss rate at the sweep period with batching on.
//
// Flags (beyond nothing — this binary does not use google-benchmark):
//   --json=PATH       write bench/baselines-style BENCH_throughput.json
//                     (gated "results" plus an ungated "summary" object)
//   --baseline=PATH   gate ns/subframe + stage means against a committed
//                     baseline; exit 1 on regression beyond --threshold
//   --threshold=PCT   regression threshold (default 30)
//   --require-win     exit 1 unless batched beats unbatched CPU ns/subframe
//                     (CI's SIMD perf-smoke asserts the win; scalar builds
//                     may legitimately tie — the SoA sweep needs vector
//                     lanes to be cheaper than the per-block loop)
//   --bs=N            basestations for the pipeline runs (default 2)
//   --subframes=N     subframes per basestation (default 16)
//   --period-us=N     saturating arrival period (default 200)
//   --reps=N          pipeline repetitions per configuration, best-of (default
//                     2: the first-ever run pays cold caches and frequency
//                     ramp, which would otherwise flake the win check)
//   --sweep-period-ms=N  real-time period for the capacity sweep (default 4)
//   --max-bs=N        sweep upper bound (default 4; 0 skips the sweep)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "bench_gate.hpp"
#include "bench_util.hpp"
#include "common/thread_utils.hpp"
#include "runtime/node_runtime.hpp"

namespace rtopex::bench {
namespace {

/// Process CPU time: every thread's user+system time summed by the kernel.
/// On an oversubscribed host the wall clock mostly measures the scheduler,
/// so the work comparison (and the baseline gate) runs on CPU time.
std::uint64_t process_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

struct PipelineResult {
  double ns_per_subframe = 0.0;
  double cpu_ns_per_subframe = 0.0;
  double subframes_per_sec = 0.0;
  double fft_us = 0.0;
  double demod_us = 0.0;
  double decode_us = 0.0;
  std::size_t batched_subframes = 0;
  std::size_t records = 0;
  std::size_t crc_failures = 0;
};

runtime::RuntimeConfig base_config(unsigned bs, std::size_t subframes) {
  runtime::RuntimeConfig cfg;
  cfg.mode = runtime::RuntimeMode::kGlobal;
  cfg.num_basestations = bs;
  cfg.global_cores = 2 * bs;
  cfg.subframes_per_bs = subframes;
  cfg.phy.num_antennas = 2;
  cfg.mcs_cycle = {4, 16, 27};
  cfg.seed = 42;
  return cfg;
}

/// One saturating end-to-end run; wall time spans run() so it covers the
/// ticker schedule plus the drain of the backlog the short period creates.
PipelineResult run_pipeline(unsigned bs, std::size_t subframes,
                            long period_us, bool batched) {
  runtime::RuntimeConfig cfg = base_config(bs, subframes);
  cfg.subframe_period = microseconds(period_us);
  cfg.deadline_budget = milliseconds(50);
  cfg.rtt_half = microseconds(50);
  cfg.enforce_deadlines = false;
  // One worker drains the whole backlog: the comparison is work per
  // subframe through a single core, which is what batching changes. With
  // several workers time-slicing (CI containers expose few cores) the wall
  // and CPU figures both measure preemption, not the pipeline, and the
  // saturating period keeps the queue deep enough that batch drains fill
  // their SoA lanes.
  cfg.global_cores = 1;
  if (batched) {
    cfg.throughput.batch = 16;
    cfg.throughput.numa_pools = true;
    cfg.throughput.pin_workers = true;
  }
  runtime::NodeRuntime node(cfg);
  const std::uint64_t c0 = process_cpu_ns();
  const std::uint64_t t0 = monotonic_ns();
  const runtime::RuntimeReport report = node.run();
  const std::uint64_t wall = monotonic_ns() - t0;
  const std::uint64_t cpu = process_cpu_ns() - c0;

  PipelineResult r;
  r.records = report.records.size();
  r.crc_failures = report.crc_failures;
  r.batched_subframes = report.batched_subframes;
  if (r.records == 0) return r;
  r.ns_per_subframe = static_cast<double>(wall) / r.records;
  r.cpu_ns_per_subframe = static_cast<double>(cpu) / r.records;
  r.subframes_per_sec = 1e9 * r.records / static_cast<double>(wall);
  double fft = 0.0, demod = 0.0, decode = 0.0;
  for (const auto& rec : report.records) {
    fft += static_cast<double>(rec.timing.fft);
    demod += static_cast<double>(rec.timing.demod);
    decode += static_cast<double>(rec.timing.decode);
  }
  r.fft_us = fft / r.records / 1e3;
  r.demod_us = demod / r.records / 1e3;
  r.decode_us = decode / r.records / 1e3;
  return r;
}

/// `reps` back-to-back (batched, unbatched) pairs; returns the pair from
/// the cleanest window (lowest combined CPU ns/subframe). The two runs of a
/// pair share whatever noise window the host is in, so their ratio is
/// meaningful even when an entire window runs 30% slow — picking each
/// side's best independently would compare measurements from different
/// windows and scramble exactly that ratio. A rep that breaks the
/// conservation/CRC contract is returned as-is so the caller's check fires.
struct PipelinePair {
  PipelineResult batched;
  PipelineResult plain;
};

PipelinePair best_pipelines(unsigned bs, std::size_t subframes,
                            long period_us, unsigned reps) {
  PipelinePair best;
  double best_combined = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    PipelinePair pair;
    pair.batched = run_pipeline(bs, subframes, period_us, true);
    pair.plain = run_pipeline(bs, subframes, period_us, false);
    for (const PipelineResult* p : {&pair.batched, &pair.plain}) {
      if (p->crc_failures > 0 || p->records != bs * subframes) return pair;
    }
    const double combined =
        pair.batched.cpu_ns_per_subframe + pair.plain.cpu_ns_per_subframe;
    if (r == 0 || combined < best_combined) {
      best = pair;
      best_combined = combined;
    }
  }
  return best;
}

/// Largest basestation count whose deadline-miss rate stays under 1% at the
/// given real-time period (batched configuration, deadlines enforced).
unsigned sweep_max_bs(unsigned max_bs, long period_ms, std::size_t subframes) {
  unsigned best = 0;
  for (unsigned bs = 1; bs <= max_bs; ++bs) {
    // Real-time miss tests flake on shared/virtualized hosts (a noisy
    // window mid-run inflates service times); a level only counts as
    // over-capacity when it misses twice.
    double miss_rate = 1.0;
    for (int attempt = 0; attempt < 2 && miss_rate >= 0.01; ++attempt) {
      runtime::RuntimeConfig cfg = base_config(bs, subframes);
      cfg.subframe_period = milliseconds(period_ms);
      cfg.deadline_budget = milliseconds(2 * period_ms);
      cfg.rtt_half = microseconds(100);
      cfg.throughput.batch = 16;
      cfg.throughput.numa_pools = true;
      cfg.throughput.pin_workers = true;
      runtime::NodeRuntime node(cfg);
      const runtime::RuntimeReport report = node.run();
      const double total = static_cast<double>(report.records.size());
      miss_rate = total > 0.0
                      ? static_cast<double>(report.deadline_misses) / total
                      : 1.0;
      std::printf("sweep bs=%u: %zu/%zu misses (%.2f%%)\n", bs,
                  report.deadline_misses, report.records.size(),
                  100.0 * miss_rate);
    }
    if (miss_rate >= 0.01) break;
    best = bs;
  }
  return best;
}

int run(int argc, char** argv) {
  std::string json_path, baseline_path;
  double threshold_pct = 30.0;
  bool require_win = false;
  unsigned bs = 2;
  std::size_t subframes = 16;
  long period_us = 200;
  unsigned reps = 2;
  long sweep_period_ms = 4;
  unsigned max_bs = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--json=", 0) == 0) {
      json_path = val("--json=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = val("--baseline=");
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::stod(val("--threshold="));
    } else if (arg == "--require-win") {
      require_win = true;
    } else if (arg.rfind("--bs=", 0) == 0) {
      bs = static_cast<unsigned>(std::stoul(val("--bs=")));
    } else if (arg.rfind("--subframes=", 0) == 0) {
      subframes = std::stoul(val("--subframes="));
    } else if (arg.rfind("--period-us=", 0) == 0) {
      period_us = std::stol(val("--period-us="));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::max(1u, static_cast<unsigned>(std::stoul(val("--reps="))));
    } else if (arg.rfind("--sweep-period-ms=", 0) == 0) {
      sweep_period_ms = std::stol(val("--sweep-period-ms="));
    } else if (arg.rfind("--max-bs=", 0) == 0) {
      max_bs = static_cast<unsigned>(std::stoul(val("--max-bs=")));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }

  std::printf(
      "pipeline: %u bs x %zu subframes, %ld us arrival period, best of %u\n",
      bs, subframes, period_us, reps);
  const PipelinePair pair = best_pipelines(bs, subframes, period_us, reps);
  const PipelineResult& batched = pair.batched;
  const PipelineResult& plain = pair.plain;
  for (const auto* p : {&batched, &plain}) {
    std::printf(
        "  %-9s %8.0f subframes/s  %9.0f ns/subframe wall  %9.0f ns cpu  "
        "(fft %.0f us, demod %.0f us, decode %.0f us; %zu batch-decoded)\n",
        p == &batched ? "batched" : "unbatched", p->subframes_per_sec,
        p->ns_per_subframe, p->cpu_ns_per_subframe, p->fft_us, p->demod_us,
        p->decode_us, p->batched_subframes);
  }
  if (batched.crc_failures + plain.crc_failures > 0 ||
      batched.records != bs * subframes || plain.records != bs * subframes) {
    std::fprintf(stderr,
                 "pipeline run broke the conservation/CRC contract "
                 "(batched %zu/%zu crc %zu, plain %zu/%zu crc %zu)\n",
                 batched.records, bs * subframes, batched.crc_failures,
                 plain.records, bs * subframes, plain.crc_failures);
    return 1;
  }

  unsigned capacity = 0;
  if (max_bs > 0) {
    std::printf("capacity sweep: %ld ms period, <1%% miss target\n",
                sweep_period_ms);
    capacity = sweep_max_bs(max_bs, sweep_period_ms, subframes);
    std::printf("  max basestations under 1%% miss: %u\n", capacity);
  }

  // Gated entries: all "lower is better" nanosecond figures, so the shared
  // cpu-time gate applies directly. The capacity count is higher-better and
  // host-dependent, so it stays in the ungated summary.
  std::vector<CapturedRun> runs;
  runs.push_back({"node_batched_per_subframe", batched.ns_per_subframe,
                  batched.cpu_ns_per_subframe});
  runs.push_back({"node_unbatched_per_subframe", plain.ns_per_subframe,
                  plain.cpu_ns_per_subframe});
  runs.push_back({"stage_fft_mean", batched.fft_us * 1e3,
                  batched.fft_us * 1e3});
  runs.push_back({"stage_demod_mean", batched.demod_us * 1e3,
                  batched.demod_us * 1e3});
  runs.push_back({"stage_decode_mean", batched.decode_us * 1e3,
                  batched.decode_us * 1e3});

  if (!json_path.empty()) {
    JsonValue root = JsonValue::object();
    root.set("bench", "throughput_node");
    JsonValue config = JsonValue::object();
#ifdef RTOPEX_SIMD
    config.set("simd", JsonValue::boolean(true));
#else
    config.set("simd", JsonValue::boolean(false));
#endif
    config.set("basestations", static_cast<double>(bs));
    config.set("subframes_per_bs", static_cast<double>(subframes));
    config.set("period_us", static_cast<double>(period_us));
    root.set("config", std::move(config));
    JsonValue results = JsonValue::array();
    for (const auto& r : runs) {
      JsonValue entry = JsonValue::object();
      entry.set("name", r.name);
      entry.set("real_ns", r.real_ns);
      entry.set("cpu_ns", r.cpu_ns);
      results.push(std::move(entry));
    }
    root.set("results", std::move(results));
    JsonValue summary = JsonValue::object();
    summary.set("subframes_per_sec_batched", batched.subframes_per_sec);
    summary.set("subframes_per_sec_unbatched", plain.subframes_per_sec);
    summary.set("cpu_ns_per_subframe_batched", batched.cpu_ns_per_subframe);
    summary.set("cpu_ns_per_subframe_unbatched", plain.cpu_ns_per_subframe);
    summary.set("batch_decoded_subframes",
                static_cast<double>(batched.batched_subframes));
    summary.set("max_basestations_lt1pct_miss",
                static_cast<double>(capacity));
    root.set("summary", std::move(summary));
    write_bench_json(json_path, root);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // The win check runs on CPU time per subframe: batching exists to shrink
  // the work per subframe, and unlike wall time that number survives noisy
  // or oversubscribed hosts (a 1-core container timeslicing 4 workers
  // measures its scheduler, not the pipeline, through the wall clock).
  if (require_win &&
      batched.cpu_ns_per_subframe >= plain.cpu_ns_per_subframe) {
    std::fprintf(stderr,
                 "throughput gate: batched (%.0f cpu ns/subframe) did not "
                 "beat unbatched (%.0f cpu ns/subframe)\n",
                 batched.cpu_ns_per_subframe, plain.cpu_ns_per_subframe);
    return 1;
  }

  if (!baseline_path.empty()) {
    const auto baseline = read_baseline(baseline_path);
    const int regressions =
        gate_against_baseline(runs, baseline, threshold_pct);
    if (regressions > 0) {
      std::fprintf(stderr, "perf gate: %d regression(s) beyond +%.0f%%\n",
                   regressions, threshold_pct);
      return 1;
    }
    std::printf("perf gate: ok\n");
  }
  return 0;
}

}  // namespace
}  // namespace rtopex::bench

int main(int argc, char** argv) { return rtopex::bench::run(argc, argv); }
