// Fig. 3 — Variations in processing time:
//   (a) vs MCS for L = 1..4 at N = 2      (model over this host's fit)
//   (b) vs MCS for SNR in {10, 20, 30} dB (measured: L emerges from decode)
//   (c) vs MCS for N in {1, 2}            (measured)
//   (d) error distribution                (fit residuals + platform model)
//
// Key metrics are emitted as BENCH_fig03.json into --out DIR (default: the
// working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "model/platform_error.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 3", "processing-time variability");

  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  // One shared measurement sweep feeds (b), (c) and the fit for (a)/(d).
  bench::PhyMeasurementConfig cfg;
  for (unsigned mcs = 0; mcs <= phy::kMaxMcs; mcs += 3)
    cfg.mcs_values.push_back(mcs);
  cfg.mcs_values.push_back(27);
  cfg.snr_values_db = {10.0, 20.0, 30.0};
  cfg.antenna_counts = {1, 2};
  cfg.repetitions = 2;
  const auto data = bench::measure_phy_chain(cfg);
  const model::TimingModel fit = model::fit_timing_model(data);

  std::printf("\n(a) T_rxproc (us) vs MCS for fixed L (N = 2, fitted model)\n");
  bench::print_row({"mcs", "L=1", "L=2", "L=3", "L=4"});
  bench::JsonValue model_rows = bench::JsonValue::array();
  for (unsigned mcs = 0; mcs <= phy::kMaxMcs; mcs += 3) {
    const double d = phy::subcarrier_load(mcs, 50);
    const unsigned k = phy::modulation_order(mcs);
    std::vector<std::string> row = {std::to_string(mcs)};
    bench::JsonValue jrow =
        bench::JsonValue::object().set("mcs", static_cast<double>(mcs));
    for (unsigned l = 1; l <= 4; ++l) {
      const double us = to_us(fit.predict(2, k, d, l));
      row.push_back(bench::fmt(us, 0));
      jrow.set("l" + std::to_string(l) + "_us", us);
    }
    bench::print_row(row);
    model_rows.push(std::move(jrow));
  }

  // Helper: mean measured time grouped by predicate.
  const auto mean_time = [&](auto&& pred) {
    RunningStats s;
    for (const auto& m : data)
      if (pred(m)) s.add(m.time_us);
    return s;
  };

  std::printf("\n(b) measured T_rxproc (us) vs SNR (N = 2) — L emerges from the decoder\n");
  bench::print_row({"group", "mean_us", "max_us"});
  // Group by low/high load at each SNR is implicit in (a); report per-SNR
  // aggregate over high MCS (>= 21) where iteration effects dominate.
  // The measurement config interleaves SNRs, so re-measure per SNR.
  bench::JsonValue snr_rows = bench::JsonValue::array();
  for (const double snr : {10.0, 20.0, 30.0}) {
    bench::PhyMeasurementConfig c2;
    c2.mcs_values = {21, 24, 27};
    c2.snr_values_db = {snr};
    c2.antenna_counts = {2};
    c2.repetitions = 2;
    const auto d2 = bench::measure_phy_chain(c2);
    RunningStats s;
    double mean_l = 0.0;
    for (const auto& m : d2) {
      s.add(m.time_us);
      mean_l += m.iterations;
    }
    std::printf("%-22s%14s%14s   (mean L = %.2f)\n",
                ("SNR " + bench::fmt(snr, 0) + " dB, MCS>=21").c_str(),
                bench::fmt(s.mean(), 0).c_str(),
                bench::fmt(s.max(), 0).c_str(),
                mean_l / static_cast<double>(d2.size()));
    snr_rows.push(bench::JsonValue::object()
                      .set("snr_db", snr)
                      .set("mean_us", s.mean())
                      .set("max_us", s.max())
                      .set("mean_iterations",
                           mean_l / static_cast<double>(d2.size())));
  }

  std::printf("\n(c) measured T_rxproc (us) vs antennas\n");
  bench::print_row({"antennas", "mean_us", "max_us"});
  bench::JsonValue antenna_rows = bench::JsonValue::array();
  for (const unsigned n : {1u, 2u}) {
    const auto s = mean_time([&](const auto& m) { return m.antennas == n; });
    bench::print_row({std::to_string(n), bench::fmt(s.mean(), 0),
                      bench::fmt(s.max(), 0)});
    antenna_rows.push(bench::JsonValue::object()
                          .set("antennas", static_cast<double>(n))
                          .set("mean_us", s.mean())
                          .set("max_us", s.max()));
  }
  const auto s1 = mean_time([](const auto& m) { return m.antennas == 1; });
  const auto s2 = mean_time([](const auto& m) { return m.antennas == 2; });
  std::printf("second antenna adds ~%.0f us on this host (paper: ~169/200)\n",
              s2.mean() - s1.mean());

  std::printf("\n(d) error distribution\n");
  const auto residuals = model::model_residuals(fit, data);
  std::vector<double> abs_res;
  for (const double r : residuals) abs_res.push_back(std::abs(r));
  std::printf("model |residual| (us):  p50 %.0f   p99 %.0f   p99.9 %.0f   max %.0f\n",
              quantile(abs_res, 0.5), quantile(abs_res, 0.99),
              quantile(abs_res, 0.999),
              quantile(abs_res, 1.0));
  const model::PlatformErrorModel platform;
  Rng rng(3);
  std::vector<double> jitter;
  for (int i = 0; i < 500000; ++i)
    jitter.push_back(to_us(platform.sample(rng)));
  std::printf("platform jitter model (us, paper Fig. 3d / cyclictest):\n");
  std::printf("  p50 %.0f   p99 %.0f   p99.9 %.0f   max %.0f"
              "   (paper: 99.9%% < 150 us, spikes to ~700 us)\n",
              quantile(jitter, 0.5), quantile(jitter, 0.99),
              quantile(jitter, 0.999), quantile(jitter, 1.0));

  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig03_proc_time")
      .set("config", bench::JsonValue::object()
                         .set("num_prb", 50.0)
                         .set("repetitions", 2.0))
      .set("model_vs_mcs", std::move(model_rows))
      .set("measured_vs_snr", std::move(snr_rows))
      .set("measured_vs_antennas", std::move(antenna_rows))
      .set("residual_abs_us",
           bench::JsonValue::object()
               .set("p50", quantile(abs_res, 0.5))
               .set("p99", quantile(abs_res, 0.99))
               .set("p999", quantile(abs_res, 0.999))
               .set("max", quantile(abs_res, 1.0)))
      .set("platform_jitter_us",
           bench::JsonValue::object()
               .set("p50", quantile(jitter, 0.5))
               .set("p99", quantile(jitter, 0.99))
               .set("p999", quantile(jitter, 0.999))
               .set("max", quantile(jitter, 1.0)));
  bench::write_bench_json(out_dir + "/BENCH_fig03.json", root);
  std::printf("wrote %s/BENCH_fig03.json\n", out_dir.c_str());
  return 0;
}
