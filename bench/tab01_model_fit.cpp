// Table 1 — Eq. (1) model parameter estimates.
//
// Measures this repo's real PHY chain (TX -> AWGN -> RX wall-clock) across
// MCS, SNR and antenna counts, fits T = w0 + w1*N + w2*K + w3*D*L by OLS
// and reports the estimates next to the paper's GPP numbers. Absolute
// magnitudes differ from the paper (different host, no hand-tuned SIMD);
// the reproduction targets are the model *form* and the fit quality r^2.
//
// Key metrics are emitted as BENCH_tab01.json into --out DIR (default: the
// working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Table 1", "Eq. (1) fit on this host's PHY chain");

  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  bench::PhyMeasurementConfig cfg;
  for (unsigned mcs = 0; mcs <= phy::kMaxMcs; mcs += 2)
    cfg.mcs_values.push_back(mcs);
  cfg.mcs_values.push_back(27);
  cfg.snr_values_db = {8.0, 12.0, 16.0, 20.0, 30.0};
  cfg.antenna_counts = {1, 2};
  cfg.repetitions = 3;

  const auto data = bench::measure_phy_chain(cfg);
  std::printf("measurements: %zu (MCS x SNR x antennas x reps)\n",
              data.size());

  const model::TimingModel fit = model::fit_timing_model(data);
  const model::TimingModel paper = model::paper_gpp_model();

  bench::print_row({"", "w0_us", "w1_us", "w2_us", "w3_us", "r2"});
  bench::print_row({"paper (Xeon E5-2660)", bench::fmt(paper.w0_us, 1),
                    bench::fmt(paper.w1_us, 1), bench::fmt(paper.w2_us, 1),
                    bench::fmt(paper.w3_us, 1),
                    bench::fmt(paper.r_squared, 3)});
  bench::print_row({"this host (fit)", bench::fmt(fit.w0_us, 1),
                    bench::fmt(fit.w1_us, 1), bench::fmt(fit.w2_us, 1),
                    bench::fmt(fit.w3_us, 1), bench::fmt(fit.r_squared, 3)});

  // Paper §2.1 anchors, re-derived from this host's fit.
  std::printf("\nper-antenna cost:        %.1f us (paper: 169.1)\n",
              fit.w1_us);
  std::printf("per-iteration at MCS 27: %.1f us (paper: ~345)\n",
              fit.w3_us * 3.775);
  std::printf("\nnote: absolute magnitudes are host-specific (no SIMD "
              "hand-tuning here); the\nreproduction targets are the "
              "positive per-antenna/order/iteration slopes and the\nfit "
              "quality. The intercept is sensitive to the K<->D collinearity "
              "of the MCS grid.\n");

  const auto model_row = [](const model::TimingModel& m) {
    return bench::JsonValue::object()
        .set("w0_us", m.w0_us)
        .set("w1_us", m.w1_us)
        .set("w2_us", m.w2_us)
        .set("w3_us", m.w3_us)
        .set("r2", m.r_squared);
  };
  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "tab01_model_fit")
      .set("config", bench::JsonValue::object()
                         .set("measurements", static_cast<double>(data.size()))
                         .set("repetitions", 3.0))
      .set("paper_gpp", model_row(paper))
      .set("this_host", model_row(fit))
      .set("anchors", bench::JsonValue::object()
                          .set("per_antenna_us", fit.w1_us)
                          .set("per_iteration_mcs27_us", fit.w3_us * 3.775));
  bench::write_bench_json(out_dir + "/BENCH_tab01.json", root);
  std::printf("wrote %s/BENCH_tab01.json\n", out_dir.c_str());
  return 0;
}
