// Google-benchmark micro-benchmarks of the scheduling layer: planner,
// simulator policies, and workload generation throughput.
//
// Beyond the standard benchmark flags this binary understands
// --json=PATH / --baseline=PATH / --threshold=PCT (see bench_gate.hpp);
// CI's "Bench JSON artifacts" step collects the BENCH_micro_sched.json.
#include <benchmark/benchmark.h>

#include "bench_gate.hpp"
#include "core/experiment.hpp"
#include "sched/migration.hpp"

namespace rtopex {
namespace {

void BM_MigrationPlanner(benchmark::State& state) {
  const auto n_cands = static_cast<std::size_t>(state.range(0));
  std::vector<sched::MigrationCandidate> cands;
  for (unsigned c = 0; c < n_cands; ++c)
    cands.push_back({c, microseconds(200 + 100 * c)});
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::plan_migration(
        6, microseconds(150), microseconds(20), cands));
}
BENCHMARK(BM_MigrationPlanner)->Arg(2)->Arg(7)->Arg(15);

void BM_WorkloadGeneration(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::make_workload(cfg));
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_WorkloadGeneration)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_SchedulerSimulation(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 10000;
  cfg.scheduler = static_cast<core::SchedulerKind>(state.range(0));
  cfg.global.num_cores = 8;
  const auto work = core::make_workload(cfg);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::run_scheduler(cfg, work));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(work.size()));
  state.SetLabel(core::to_string(cfg.scheduler));
}
BENCHMARK(BM_SchedulerSimulation)
    ->Arg(static_cast<int>(core::SchedulerKind::kPartitioned))
    ->Arg(static_cast<int>(core::SchedulerKind::kGlobal))
    ->Arg(static_cast<int>(core::SchedulerKind::kRtOpex))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rtopex

int main(int argc, char** argv) {
  rtopex::bench::GateMainOptions opts;
  opts.bench_name = "micro_sched";
  return rtopex::bench::gate_main(argc, argv, opts);
}
