// Google-benchmark micro-benchmarks of the PHY kernels: the compute blocks
// whose costs the Eq. (1) model abstracts, plus warm per-stage and
// end-to-end uplink-subframe benchmarks at the paper's operating points
// (10 MHz / 50 PRB, N = 2 antennas, MCS 0/13/27).
//
// Beyond the standard benchmark flags this binary understands:
//   --json=PATH        write results as bench/baselines-style
//                      BENCH_micro_phy.json
//   --baseline=PATH    compare against a previously written JSON
//   --threshold=PCT    fail (exit 1) when any benchmark's cpu time
//                      regresses more than PCT percent vs the baseline
//                      (default 25)
// CI's perf-smoke job runs this against the committed baseline in
// bench/baselines/ — see EXPERIMENTS.md "Kernel performance".
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "phy/crc.hpp"
#include "phy/fft.hpp"
#include "phy/modulation.hpp"
#include "phy/qpp_interleaver.hpp"
#include "phy/rate_match.hpp"
#include "phy/scrambler.hpp"
#include "phy/turbo.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::phy {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(1);
  IqVector data(n);
  for (auto& x : data)
    x = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  for (auto _ : state) {
    plan.forward(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(512)->Arg(1024)->Arg(2048);

// The SoA path on caller-owned split buffers — what the uplink FFT subtasks
// actually run (no interleave/deinterleave shuffle).
void BM_FftSoa(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(1);
  std::vector<float> re(n), im(n);
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = static_cast<float>(rng.normal());
    im[i] = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    plan.forward_soa(re, im);
    benchmark::DoNotOptimize(re.data());
    benchmark::DoNotOptimize(im.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftSoa)->Arg(1024)->Arg(2048);

void BM_Crc24a(benchmark::State& state) {
  const BitVector bits =
      random_bits(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(crc24a(bits));
}
BENCHMARK(BM_Crc24a)->Arg(6144);

void BM_TurboEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const BitVector bits = random_bits(k, 3);
  for (auto _ : state) benchmark::DoNotOptimize(enc.encode(bits));
}
BENCHMARK(BM_TurboEncode)->Arg(1024)->Arg(6144);

void BM_TurboDecode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto iters = static_cast<unsigned>(state.range(1));
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, iters);
  const BitVector bits = random_bits(k, 4);
  const auto cw = enc.encode(bits);
  LlrVector sys(k + 4), p1(k + 4), p2(k + 4);
  for (std::size_t i = 0; i < k + 4; ++i) {
    sys[i] = cw.systematic[i] ? -4.0f : 4.0f;
    p1[i] = cw.parity1[i] ? -4.0f : 4.0f;
    p2[i] = cw.parity2[i] ? -4.0f : 4.0f;
  }
  DecodeWorkspace ws;
  for (auto _ : state) {
    dec.decode_into(sys, p1, p2, ws);
    benchmark::DoNotOptimize(ws.bits.data());
  }
}
BENCHMARK(BM_TurboDecode)->Args({6144, 1})->Args({6144, 4});

void BM_Demodulate(benchmark::State& state) {
  const auto order = static_cast<unsigned>(state.range(0));
  const BitVector bits = random_bits(600 * order, 5);
  const IqVector symbols = modulate(bits, order);
  const std::vector<float> nv(symbols.size(), 0.01f);
  LlrVector out(symbols.size() * order);
  for (auto _ : state) {
    demodulate_into(symbols, nv, order, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_Demodulate)->Arg(2)->Arg(4)->Arg(6);

void BM_RateMatch(benchmark::State& state) {
  const std::size_t k = 6144;
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const RateMatcher rm(k);
  const auto cw = enc.encode(random_bits(k, 6));
  for (auto _ : state) benchmark::DoNotOptimize(rm.match(cw, 7200));
}
BENCHMARK(BM_RateMatch);

void BM_Scrambler(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(scrambling_sequence(0x1234, 43200));
}
BENCHMARK(BM_Scrambler);

// --- Warm per-stage and end-to-end subframe benchmarks ---------------------
//
// These measure the stage methods exactly as a NodeRuntime worker runs them:
// reused job, reused per-thread workspace, no allocations in steady state.
// The subframe fixture is noiseless (samples fanned out to both antennas),
// so the decode stage sees the paper's one-iteration fast path.

struct SubframeFixture {
  explicit SubframeFixture(unsigned mcs, unsigned antennas = 2)
      : cfg{}, mcs(mcs) {
    cfg.num_antennas = antennas;
    const UplinkTransmitter tx(cfg);
    rx = std::make_unique<UplinkRxProcessor>(cfg);
    const TxSubframe sf = tx.transmit(mcs, 1, 42);
    subframe_index = sf.subframe_index;
    antenna_samples.assign(antennas, sf.samples);
    job = rx->make_job();
    run_all();  // warm-up: every grow-only buffer reaches its high-water mark.
  }

  void run_all() {
    auto& ws = UplinkRxProcessor::thread_workspace();
    rx->begin(job, antenna_samples, mcs, subframe_index);
    for (std::size_t s = 0; s < rx->fft_subtask_count(); ++s)
      rx->run_fft_subtask(job, s, ws);
    rx->demod_prepare(job);
    for (std::size_t s = 0; s < rx->demod_subtask_count(); ++s)
      rx->run_demod_subtask(job, s);
    rx->decode_prepare(job, ws);
    for (std::size_t s = 0; s < rx->decode_subtask_count(job); ++s)
      rx->run_decode_subtask(job, s, ws);
    rx->finalize_into(job, ws, result);
  }

  UplinkConfig cfg;
  unsigned mcs;
  std::uint32_t subframe_index = 0;
  std::vector<IqVector> antenna_samples;
  std::unique_ptr<UplinkRxProcessor> rx;
  UplinkRxJob job;
  UplinkRxResult result;
};

// One full FFT stage: 14 * N OFDM symbol transforms + subcarrier extraction.
void BM_UplinkStageFft(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  auto& ws = UplinkRxProcessor::thread_workspace();
  for (auto _ : state) {
    for (std::size_t s = 0; s < f.rx->fft_subtask_count(); ++s)
      f.rx->run_fft_subtask(f.job, s, ws);
    benchmark::DoNotOptimize(f.job.grid.data());
  }
}
BENCHMARK(BM_UplinkStageFft)->Arg(27)->Unit(benchmark::kMicrosecond);

// One full demod stage: channel estimation + MRC + max-log demapping.
void BM_UplinkStageDemod(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    f.rx->demod_prepare(f.job);
    for (std::size_t s = 0; s < f.rx->demod_subtask_count(); ++s)
      f.rx->run_demod_subtask(f.job, s);
    benchmark::DoNotOptimize(f.job.llrs.data());
  }
}
BENCHMARK(BM_UplinkStageDemod)->Arg(27)->Unit(benchmark::kMicrosecond);

// One full decode stage (rate dematch + turbo over all code blocks).
// decode_prepare is excluded: descrambling flips job.llrs in place, so
// repeating it would corrupt the fixture (it is measured by BM_Scrambler).
void BM_UplinkStageDecode(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  auto& ws = UplinkRxProcessor::thread_workspace();
  for (auto _ : state) {
    for (std::size_t s = 0; s < f.rx->decode_subtask_count(f.job); ++s)
      f.rx->run_decode_subtask(f.job, s, ws);
    benchmark::DoNotOptimize(f.job.cb_results.data());
  }
}
BENCHMARK(BM_UplinkStageDecode)->Arg(27)->Unit(benchmark::kMicrosecond);

// Steady-state end-to-end subframe: the number a worker core must beat
// every millisecond. Arg = MCS.
void BM_UplinkSubframe(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    f.run_all();
    benchmark::DoNotOptimize(f.result.crc_ok);
  }
  state.counters["crc_ok"] = f.result.crc_ok ? 1 : 0;
}
BENCHMARK(BM_UplinkSubframe)->Arg(0)->Arg(13)->Arg(27)
    ->Unit(benchmark::kMicrosecond);

// The allocating convenience path (fresh job per call), kept for contrast
// with BM_UplinkSubframe and continuity with older baselines.
void BM_FullUplinkChain(benchmark::State& state) {
  const auto mcs = static_cast<unsigned>(state.range(0));
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  const UplinkTransmitter tx(cfg);
  const UplinkRxProcessor rx(cfg);
  const TxSubframe sf = tx.transmit(mcs, 1, 42);
  channel::ChannelConfig ch;
  ch.snr_db = 30.0;
  ch.num_rx_antennas = 2;
  const auto samples = channel::pass_through_channel(sf.samples, ch, 43);
  for (auto _ : state)
    benchmark::DoNotOptimize(rx.process(samples, mcs, sf.subframe_index));
}
BENCHMARK(BM_FullUplinkChain)->Arg(0)->Arg(13)->Arg(27)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rtopex::phy

namespace {

struct CapturedRun {
  std::string name;
  double real_ns = 0.0;
  double cpu_ns = 0.0;
};

/// Console reporter that also keeps per-iteration-group results so main()
/// can emit the BENCH_micro_phy.json artifact and run the baseline gate.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters = static_cast<double>(run.iterations);
      captured.push_back({run.benchmark_name(),
                          run.real_accumulated_time / iters * 1e9,
                          run.cpu_accumulated_time / iters * 1e9});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<CapturedRun> captured;
};

/// Minimal extractor for the baseline JSON this binary itself writes
/// (objects with "name"/"real_ns"/"cpu_ns" fields).
std::map<std::string, CapturedRun> read_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open baseline: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::map<std::string, CapturedRun> entries;
  const std::string name_key = "\"name\":\"";
  const auto number_after = [&](std::size_t from, const std::string& key) {
    const std::size_t at = text.find(key, from);
    if (at == std::string::npos) return -1.0;
    return std::stod(text.substr(at + key.size()));
  };
  for (std::size_t pos = text.find(name_key); pos != std::string::npos;
       pos = text.find(name_key, pos + 1)) {
    const std::size_t begin = pos + name_key.size();
    const std::size_t end = text.find('"', begin);
    if (end == std::string::npos) break;
    CapturedRun entry;
    entry.name = text.substr(begin, end - begin);
    entry.real_ns = number_after(end, "\"real_ns\":");
    entry.cpu_ns = number_after(end, "\"cpu_ns\":");
    if (entry.cpu_ns > 0.0) entries[entry.name] = entry;
  }
  return entries;
}

void write_results_json(const std::string& path,
                        const std::vector<CapturedRun>& runs) {
  using rtopex::bench::JsonValue;
  JsonValue root = JsonValue::object();
  root.set("bench", "micro_phy");
  JsonValue config = JsonValue::object();
#ifdef RTOPEX_SIMD
  config.set("simd", JsonValue::boolean(true));
#else
  config.set("simd", JsonValue::boolean(false));
#endif
  root.set("config", std::move(config));
  JsonValue results = JsonValue::array();
  for (const auto& run : runs) {
    JsonValue entry = JsonValue::object();
    entry.set("name", run.name);
    entry.set("real_ns", run.real_ns);
    entry.set("cpu_ns", run.cpu_ns);
    results.push(std::move(entry));
  }
  root.set("results", std::move(results));
  rtopex::bench::write_bench_json(path, root);
}

/// Returns the number of benchmarks whose cpu time regressed beyond the
/// threshold. Benchmarks missing from either side are reported, not failed
/// (the baseline predates newly added benchmarks).
int gate_against_baseline(const std::vector<CapturedRun>& runs,
                          const std::map<std::string, CapturedRun>& baseline,
                          double threshold_pct) {
  int regressions = 0;
  std::printf("\nPerf gate (threshold +%.0f%% cpu time vs baseline):\n",
              threshold_pct);
  std::printf("%-28s %14s %14s %9s\n", "benchmark", "baseline_ns", "cpu_ns",
              "ratio");
  for (const auto& run : runs) {
    const auto it = baseline.find(run.name);
    if (it == baseline.end()) {
      std::printf("%-28s %14s %14.0f %9s\n", run.name.c_str(), "-",
                  run.cpu_ns, "new");
      continue;
    }
    const double ratio = run.cpu_ns / it->second.cpu_ns;
    const bool bad = ratio > 1.0 + threshold_pct / 100.0;
    std::printf("%-28s %14.0f %14.0f %8.2fx%s\n", run.name.c_str(),
                it->second.cpu_ns, run.cpu_ns, ratio,
                bad ? "  REGRESSION" : "");
    if (bad) ++regressions;
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline_path;
  double threshold_pct = 25.0;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::stod(arg.substr(12));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    write_results_json(json_path, reporter.captured);
    std::printf("wrote %s (%zu benchmarks)\n", json_path.c_str(),
                reporter.captured.size());
  }
  if (!baseline_path.empty()) {
    const auto baseline = read_baseline(baseline_path);
    const int regressions =
        gate_against_baseline(reporter.captured, baseline, threshold_pct);
    if (regressions > 0) {
      std::fprintf(stderr, "perf gate: %d regression(s) beyond +%.0f%%\n",
                   regressions, threshold_pct);
      return 1;
    }
    std::printf("perf gate: ok\n");
  }
  return 0;
}
