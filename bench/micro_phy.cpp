// Google-benchmark micro-benchmarks of the PHY kernels: the compute blocks
// whose costs the Eq. (1) model abstracts, plus warm per-stage and
// end-to-end uplink-subframe benchmarks at the paper's operating points
// (10 MHz / 50 PRB, N = 2 antennas, MCS 0/13/27).
//
// Beyond the standard benchmark flags this binary understands:
//   --json=PATH        write results as bench/baselines-style
//                      BENCH_micro_phy.json
//   --baseline=PATH    compare against a previously written JSON
//   --threshold=PCT    fail (exit 1) when any benchmark's cpu time
//                      regresses more than PCT percent vs the baseline
//                      (default 25)
//   --profile=PATH     after the benchmarks, decode a few subframes per
//                      operating point under obs/profile ProfileSpans and
//                      write collapsed-stack folded output to PATH (plus
//                      the per-stage counter table on stdout)
// CI's perf-smoke job runs this against the committed baseline in
// bench/baselines/ — see EXPERIMENTS.md "Kernel performance".
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_gate.hpp"
#include "bench_util.hpp"
#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "common/thread_utils.hpp"
#include "obs/profile/profile_report.hpp"
#include "phy/crc.hpp"
#include "phy/fft.hpp"
#include "phy/modulation.hpp"
#include "phy/qpp_interleaver.hpp"
#include "phy/rate_match.hpp"
#include "phy/scrambler.hpp"
#include "phy/turbo.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::phy {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(1);
  IqVector data(n);
  for (auto& x : data)
    x = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  for (auto _ : state) {
    plan.forward(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(512)->Arg(1024)->Arg(2048);

// The SoA path on caller-owned split buffers — what the uplink FFT subtasks
// actually run (no interleave/deinterleave shuffle).
void BM_FftSoa(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(1);
  std::vector<float> re(n), im(n);
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = static_cast<float>(rng.normal());
    im[i] = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    plan.forward_soa(re, im);
    benchmark::DoNotOptimize(re.data());
    benchmark::DoNotOptimize(im.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftSoa)->Arg(1024)->Arg(2048);

void BM_Crc24a(benchmark::State& state) {
  const BitVector bits =
      random_bits(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(crc24a(bits));
}
BENCHMARK(BM_Crc24a)->Arg(6144);

void BM_TurboEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const BitVector bits = random_bits(k, 3);
  for (auto _ : state) benchmark::DoNotOptimize(enc.encode(bits));
}
BENCHMARK(BM_TurboEncode)->Arg(1024)->Arg(6144);

void BM_TurboDecode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto iters = static_cast<unsigned>(state.range(1));
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, iters);
  const BitVector bits = random_bits(k, 4);
  const auto cw = enc.encode(bits);
  LlrVector sys(k + 4), p1(k + 4), p2(k + 4);
  for (std::size_t i = 0; i < k + 4; ++i) {
    sys[i] = cw.systematic[i] ? -4.0f : 4.0f;
    p1[i] = cw.parity1[i] ? -4.0f : 4.0f;
    p2[i] = cw.parity2[i] ? -4.0f : 4.0f;
  }
  DecodeWorkspace ws;
  for (auto _ : state) {
    dec.decode_into(sys, p1, p2, ws);
    benchmark::DoNotOptimize(ws.bits.data());
  }
}
BENCHMARK(BM_TurboDecode)->Args({6144, 1})->Args({6144, 4});

// Eight-lane SoA batch decode: the cross-subframe throughput path's inner
// kernel, amortizing one trellis walk over kTurboBatchLanes blocks. Time is
// per batch; divide by 8 for the per-block figure comparable to
// BM_TurboDecode.
void BM_TurboDecodeBatch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto iters = static_cast<unsigned>(state.range(1));
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, iters);
  std::vector<LlrVector> sys(kTurboBatchLanes), p1(kTurboBatchLanes),
      p2(kTurboBatchLanes);
  std::vector<TurboBatchLane> lanes;
  for (std::size_t b = 0; b < kTurboBatchLanes; ++b) {
    const auto cw = enc.encode(random_bits(k, 40 + b));
    sys[b].resize(k + 4);
    p1[b].resize(k + 4);
    p2[b].resize(k + 4);
    for (std::size_t i = 0; i < k + 4; ++i) {
      sys[b][i] = cw.systematic[i] ? -4.0f : 4.0f;
      p1[b][i] = cw.parity1[i] ? -4.0f : 4.0f;
      p2[b][i] = cw.parity2[i] ? -4.0f : 4.0f;
    }
    lanes.push_back({sys[b], p1[b], p2[b]});
  }
  DecodeWorkspace ws;
  for (auto _ : state) {
    dec.decode_batch_into(lanes, ws, {}, 0);
    benchmark::DoNotOptimize(ws.bat_bits.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTurboBatchLanes));
}
BENCHMARK(BM_TurboDecodeBatch)->Args({6144, 1})->Args({6144, 4});

void BM_Demodulate(benchmark::State& state) {
  const auto order = static_cast<unsigned>(state.range(0));
  const BitVector bits = random_bits(600 * order, 5);
  const IqVector symbols = modulate(bits, order);
  const std::vector<float> nv(symbols.size(), 0.01f);
  LlrVector out(symbols.size() * order);
  for (auto _ : state) {
    demodulate_into(symbols, nv, order, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_Demodulate)->Arg(2)->Arg(4)->Arg(6);

void BM_RateMatch(benchmark::State& state) {
  const std::size_t k = 6144;
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const RateMatcher rm(k);
  const auto cw = enc.encode(random_bits(k, 6));
  for (auto _ : state) benchmark::DoNotOptimize(rm.match(cw, 7200));
}
BENCHMARK(BM_RateMatch);

void BM_Scrambler(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(scrambling_sequence(0x1234, 43200));
}
BENCHMARK(BM_Scrambler);

// --- Warm per-stage and end-to-end subframe benchmarks ---------------------
//
// These measure the stage methods exactly as a NodeRuntime worker runs them:
// reused job, reused per-thread workspace, no allocations in steady state.
// The subframe fixture is noiseless (samples fanned out to both antennas),
// so the decode stage sees the paper's one-iteration fast path.

struct SubframeFixture {
  explicit SubframeFixture(unsigned mcs, unsigned antennas = 2)
      : cfg{}, mcs(mcs) {
    cfg.num_antennas = antennas;
    const UplinkTransmitter tx(cfg);
    rx = std::make_unique<UplinkRxProcessor>(cfg);
    const TxSubframe sf = tx.transmit(mcs, 1, 42);
    subframe_index = sf.subframe_index;
    antenna_samples.assign(antennas, sf.samples);
    job = rx->make_job();
    run_all();  // warm-up: every grow-only buffer reaches its high-water mark.
  }

  void run_all() {
    auto& ws = UplinkRxProcessor::thread_workspace();
    rx->begin(job, antenna_samples, mcs, subframe_index);
    for (std::size_t s = 0; s < rx->fft_subtask_count(); ++s)
      rx->run_fft_subtask(job, s, ws);
    rx->demod_prepare(job);
    for (std::size_t s = 0; s < rx->demod_subtask_count(); ++s)
      rx->run_demod_subtask(job, s);
    rx->decode_prepare(job, ws);
    rx->run_decode_batch(job, ws);
    rx->finalize_into(job, ws, result);
  }

  UplinkConfig cfg;
  unsigned mcs;
  std::uint32_t subframe_index = 0;
  std::vector<IqVector> antenna_samples;
  std::unique_ptr<UplinkRxProcessor> rx;
  UplinkRxJob job;
  UplinkRxResult result;
};

// One full FFT stage: 14 * N OFDM symbol transforms + subcarrier extraction.
void BM_UplinkStageFft(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  auto& ws = UplinkRxProcessor::thread_workspace();
  for (auto _ : state) {
    for (std::size_t s = 0; s < f.rx->fft_subtask_count(); ++s)
      f.rx->run_fft_subtask(f.job, s, ws);
    benchmark::DoNotOptimize(f.job.grid.data());
  }
}
BENCHMARK(BM_UplinkStageFft)->Arg(27)->Unit(benchmark::kMicrosecond);

// One full demod stage: channel estimation + MRC + max-log demapping.
void BM_UplinkStageDemod(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    f.rx->demod_prepare(f.job);
    for (std::size_t s = 0; s < f.rx->demod_subtask_count(); ++s)
      f.rx->run_demod_subtask(f.job, s);
    benchmark::DoNotOptimize(f.job.llrs.data());
  }
}
BENCHMARK(BM_UplinkStageDemod)->Arg(27)->Unit(benchmark::kMicrosecond);

// One full decode stage (rate dematch + turbo over all code blocks) as the
// blocking workers now run it: every code block of the subframe fused into
// SoA batches by run_decode_batch. decode_prepare is excluded: descrambling
// flips job.llrs in place, so repeating it would corrupt the fixture (it is
// measured by BM_Scrambler).
void BM_UplinkStageDecode(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  auto& ws = UplinkRxProcessor::thread_workspace();
  for (auto _ : state) {
    f.rx->run_decode_batch(f.job, ws);
    benchmark::DoNotOptimize(f.job.cb_results.data());
  }
}
BENCHMARK(BM_UplinkStageDecode)->Arg(27)->Unit(benchmark::kMicrosecond);

// The per-subtask decode loop — the migratable granularity RT-OPEX mode
// still executes (one block per subtask). The gap to BM_UplinkStageDecode
// is the price of migration-grade preemption points.
void BM_UplinkStageDecodeSubtasks(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  auto& ws = UplinkRxProcessor::thread_workspace();
  for (auto _ : state) {
    for (std::size_t s = 0; s < f.rx->decode_subtask_count(f.job); ++s)
      f.rx->run_decode_subtask(f.job, s, ws);
    benchmark::DoNotOptimize(f.job.cb_results.data());
  }
}
BENCHMARK(BM_UplinkStageDecodeSubtasks)
    ->Arg(27)
    ->Unit(benchmark::kMicrosecond);

// Steady-state end-to-end subframe: the number a worker core must beat
// every millisecond. Arg = MCS.
void BM_UplinkSubframe(benchmark::State& state) {
  SubframeFixture f(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    f.run_all();
    benchmark::DoNotOptimize(f.result.crc_ok);
  }
  state.counters["crc_ok"] = f.result.crc_ok ? 1 : 0;
}
BENCHMARK(BM_UplinkSubframe)->Arg(0)->Arg(13)->Arg(27)
    ->Unit(benchmark::kMicrosecond);

// The allocating convenience path (fresh job per call), kept for contrast
// with BM_UplinkSubframe and continuity with older baselines.
void BM_FullUplinkChain(benchmark::State& state) {
  const auto mcs = static_cast<unsigned>(state.range(0));
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  const UplinkTransmitter tx(cfg);
  const UplinkRxProcessor rx(cfg);
  const TxSubframe sf = tx.transmit(mcs, 1, 42);
  channel::ChannelConfig ch;
  ch.snr_db = 30.0;
  ch.num_rx_antennas = 2;
  const auto samples = channel::pass_through_channel(sf.samples, ch, 43);
  for (auto _ : state)
    benchmark::DoNotOptimize(rx.process(samples, mcs, sf.subframe_index));
}
BENCHMARK(BM_FullUplinkChain)->Arg(0)->Arg(13)->Arg(27)
    ->Unit(benchmark::kMillisecond);

/// --profile=PATH: a post-benchmark profiled pass — the warm per-stage
/// loops the stage benchmarks time, run under ProfileSpans so the folded
/// collapsed stacks and the per-stage counter table cover the same code.
void run_profiled_pass(const std::string& folded_path) {
  namespace profile = rtopex::obs::profile;
  profile::ProfileConfig pcfg;
  pcfg.enabled = true;
  profile::Profiler profiler(1, pcfg);
  profiler.set_clock(
      [] { return static_cast<rtopex::TimePoint>(rtopex::monotonic_ns()); });
  for (const unsigned mcs : {0u, 13u, 27u}) {
    SubframeFixture f(mcs);
    auto& ws = UplinkRxProcessor::thread_workspace();
    for (int rep = 0; rep < 8; ++rep) {
      profile::ProfileSpan sf_span(&profiler, 0, "subframe");
      f.rx->begin(f.job, f.antenna_samples, f.mcs, f.subframe_index);
      {
        profile::ProfileSpan span(&profiler, 0, "fft", rtopex::obs::Stage::kFft);
        for (std::size_t s = 0; s < f.rx->fft_subtask_count(); ++s)
          f.rx->run_fft_subtask(f.job, s, ws);
      }
      {
        profile::ProfileSpan span(&profiler, 0, "demod",
                                  rtopex::obs::Stage::kDemod);
        f.rx->demod_prepare(f.job);
        for (std::size_t s = 0; s < f.rx->demod_subtask_count(); ++s)
          f.rx->run_demod_subtask(f.job, s);
      }
      {
        profile::ProfileSpan span(&profiler, 0, "decode",
                                  rtopex::obs::Stage::kDecode);
        f.rx->decode_prepare(f.job, ws);
        const std::size_t dec_n = f.rx->decode_subtask_count(f.job);
        for (std::size_t s = 0; s < dec_n; ++s)
          f.rx->run_decode_subtask(f.job, s, ws);
        f.rx->finalize_into(f.job, ws, f.result);
        span.set_payload(
            profile::pack_decode_regressors(modulation_order(mcs),
                                            f.cfg.num_antennas, mcs),
            profile::pack_decode_load(static_cast<unsigned>(dec_n),
                                      f.result.iterations));
      }
    }
  }
  const profile::ProfileStore store = profiler.take();
  std::printf("\nprofile (%s backend, %zu spans)\n%s",
              profile::to_string(store.backend), store.samples.size(),
              profile::render_report(profile::aggregate(store)).c_str());
  const std::string text = profile::folded(store);
  std::ofstream out(folded_path);
  out << text;
  std::printf("folded stacks -> %s\n", folded_path.c_str());
}

}  // namespace
}  // namespace rtopex::phy

int main(int argc, char** argv) {
  rtopex::bench::GateMainOptions opts;
  opts.bench_name = "micro_phy";
  opts.extra_flag = "profile";
  opts.extra_handler = [](const std::string& path) {
    rtopex::phy::run_profiled_pass(path);
  };
  return rtopex::bench::gate_main(argc, argv, opts);
}
