// Google-benchmark micro-benchmarks of the PHY kernels: the compute blocks
// whose costs the Eq. (1) model abstracts.
#include <benchmark/benchmark.h>

#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "phy/crc.hpp"
#include "phy/fft.hpp"
#include "phy/modulation.hpp"
#include "phy/qpp_interleaver.hpp"
#include "phy/rate_match.hpp"
#include "phy/scrambler.hpp"
#include "phy/turbo.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::phy {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(1);
  IqVector data(n);
  for (auto& x : data)
    x = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  for (auto _ : state) {
    plan.forward(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(512)->Arg(1024)->Arg(2048);

void BM_Crc24a(benchmark::State& state) {
  const BitVector bits = random_bits(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(crc24a(bits));
}
BENCHMARK(BM_Crc24a)->Arg(6144);

void BM_TurboEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const BitVector bits = random_bits(k, 3);
  for (auto _ : state) benchmark::DoNotOptimize(enc.encode(bits));
}
BENCHMARK(BM_TurboEncode)->Arg(1024)->Arg(6144);

void BM_TurboDecode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto iters = static_cast<unsigned>(state.range(1));
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, iters);
  const BitVector bits = random_bits(k, 4);
  const auto cw = enc.encode(bits);
  LlrVector sys(k + 4), p1(k + 4), p2(k + 4);
  for (std::size_t i = 0; i < k + 4; ++i) {
    sys[i] = cw.systematic[i] ? -4.0f : 4.0f;
    p1[i] = cw.parity1[i] ? -4.0f : 4.0f;
    p2[i] = cw.parity2[i] ? -4.0f : 4.0f;
  }
  for (auto _ : state) benchmark::DoNotOptimize(dec.decode(sys, p1, p2));
}
BENCHMARK(BM_TurboDecode)->Args({6144, 1})->Args({6144, 4});

void BM_Demodulate(benchmark::State& state) {
  const auto order = static_cast<unsigned>(state.range(0));
  const BitVector bits = random_bits(600 * order, 5);
  const IqVector symbols = modulate(bits, order);
  const std::vector<float> nv(symbols.size(), 0.01f);
  for (auto _ : state)
    benchmark::DoNotOptimize(demodulate(symbols, nv, order));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_Demodulate)->Arg(2)->Arg(4)->Arg(6);

void BM_RateMatch(benchmark::State& state) {
  const std::size_t k = 6144;
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const RateMatcher rm(k);
  const auto cw = enc.encode(random_bits(k, 6));
  for (auto _ : state) benchmark::DoNotOptimize(rm.match(cw, 7200));
}
BENCHMARK(BM_RateMatch);

void BM_Scrambler(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(scrambling_sequence(0x1234, 43200));
}
BENCHMARK(BM_Scrambler);

void BM_FullUplinkChain(benchmark::State& state) {
  const auto mcs = static_cast<unsigned>(state.range(0));
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  const UplinkTransmitter tx(cfg);
  const UplinkRxProcessor rx(cfg);
  const TxSubframe sf = tx.transmit(mcs, 1, 42);
  channel::ChannelConfig ch;
  ch.snr_db = 30.0;
  ch.num_rx_antennas = 2;
  const auto samples = channel::pass_through_channel(sf.samples, ch, 43);
  for (auto _ : state)
    benchmark::DoNotOptimize(rx.process(samples, mcs, sf.subframe_index));
}
BENCHMARK(BM_FullUplinkChain)->Arg(0)->Arg(13)->Arg(27)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rtopex::phy

BENCHMARK_MAIN();
