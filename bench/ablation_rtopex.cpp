// Ablation studies of RT-OPEX's design choices (DESIGN.md §5):
//   A. migration-cost (delta) sensitivity, 0 -> 100 us;
//   B. which stages migrate (fft only / decode only / both / none);
//   C. recovery on/off under stochastic transport (mispredicted windows);
//   D. Algorithm 1's structural constraints R2/R3 on/off.
#include <cstdio>

#include "bench_util.hpp"
#include "core/experiment.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Ablation", "RT-OPEX design choices");

  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 30000;
  cfg.workload.seed = 1;
  cfg.rtt_half = microseconds(550);
  cfg.scheduler = core::SchedulerKind::kRtOpex;
  const auto work = core::make_workload(cfg);

  std::printf("\n(A) migration-cost sensitivity (RTT/2 = 550 us)\n");
  bench::print_row({"delta_us", "miss_rate", "decode_migrated"});
  for (const int delta : {0, 10, 20, 40, 70, 100}) {
    cfg.rtopex = sched::RtOpexConfig{};
    cfg.rtopex.migration_cost = microseconds(delta);
    const auto r = core::run_scheduler(cfg, work);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", r.metrics.miss_rate());
    bench::print_row({std::to_string(delta), buf,
                      bench::fmt(r.metrics.decode_migration_fraction(), 3)});
  }

  std::printf("\n(B) which stages migrate\n");
  bench::print_row({"stages", "miss_rate"});
  struct Mode {
    const char* name;
    bool fft, decode;
  };
  for (const Mode m : {Mode{"none (=partitioned)", false, false},
                       Mode{"fft only", true, false},
                       Mode{"decode only", false, true},
                       Mode{"both", true, true}}) {
    cfg.rtopex = sched::RtOpexConfig{};
    cfg.rtopex.migrate_fft = m.fft;
    cfg.rtopex.migrate_decode = m.decode;
    const auto r = core::run_scheduler(cfg, work);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", r.metrics.miss_rate());
    bench::print_row({m.name, buf});
  }

  std::printf("\n(C) recovery under transport jitter (stochastic transport)\n");
  cfg.stochastic_transport = true;
  cfg.rtt_half = microseconds(450);
  const auto jittery = core::make_workload(cfg);
  bench::print_row({"recovery", "miss_rate", "recoveries"});
  for (const bool recovery : {true, false}) {
    cfg.rtopex = sched::RtOpexConfig{};
    cfg.rtopex.enable_recovery = recovery;
    const auto r = core::run_scheduler(cfg, jittery);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", r.metrics.miss_rate());
    bench::print_row({recovery ? "on" : "off", buf,
                      std::to_string(r.metrics.recoveries)});
  }

  std::printf("\n(D) Algorithm 1 constraints (RTT/2 = 550 us, fixed transport)\n");
  cfg.stochastic_transport = false;
  cfg.rtt_half = microseconds(550);
  bench::print_row({"constraints", "miss_rate", "recoveries"});
  struct Variant {
    const char* name;
    bool r2, r3;
  };
  for (const Variant v : {Variant{"R2+R3 (paper)", true, true},
                          Variant{"no R3", true, false},
                          Variant{"no R2, no R3", false, false}}) {
    cfg.rtopex = sched::RtOpexConfig{};
    cfg.rtopex.constraints.local_covers_largest_chunk = v.r2;
    cfg.rtopex.constraints.local_keeps_majority = v.r3;
    const auto r = core::run_scheduler(cfg, work);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", r.metrics.miss_rate());
    bench::print_row({v.name, buf, std::to_string(r.metrics.recoveries)});
  }
  std::printf("without R2/R3 a remote core can hoard subtasks; the local\n"
              "side idles, then recovers stragglers in bulk. Miss rates stay\n"
              "comparable but recovery (duplicated work) grows ~5x — the\n"
              "paper's constraints buy efficiency, not just latency.\n");
  return 0;
}
