// Fig. 15 — THE HEADLINE RESULT: deadline-miss rate vs one-way transport
// delay (RTT/2, 0.4–0.7 ms) for the partitioned scheduler, the global
// scheduler with 8 and 16 cores, and RT-OPEX.
//
// Setup as in the paper §4.2: 4 basestations, N = 2, 10 MHz, 100% PRB,
// trace-driven MCS, AWGN at 30 dB, Lm = 4, 30000 subframes per BS.
//
// Expected shape: partitioned rises sharply past 400 us; global tracks
// partitioned from above and is insensitive to 8 -> 16 cores; RT-OPEX stays
// ~zero below 500 us and >= 10x below both everywhere.
//
//   --faults [P]    enable fronthaul loss (prob P, default 0.01) + late
//                   arrivals and graceful degradation: regenerates the miss
//                   curves under the degraded-mode resilience layer.
//   --out DIR       also write the sweep CSV plus per-scheduler Prometheus
//                   .prom metrics snapshots (at the last RTT point) into DIR.
//
// Every run is traced and fed through the deadline-miss postmortem
// (obs/analysis): a per-scheduler miss-cause breakdown follows the main
// table, and the whole sweep is emitted as BENCH_fig15.json (config,
// per-point miss rates, latency quantiles, cause counts) into --out DIR
// (default: the working directory).
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/results_io.hpp"
#include "obs/analysis/analysis.hpp"

using namespace rtopex;
namespace analysis = rtopex::obs::analysis;

namespace {

bench::JsonValue causes_json(
    const std::array<std::uint64_t, analysis::kNumMissCauses>& counts) {
  bench::JsonValue obj = bench::JsonValue::object();
  for (unsigned c = 1; c < analysis::kNumMissCauses; ++c)
    obj.set(analysis::to_string(static_cast<analysis::MissCause>(c)),
            static_cast<double>(counts[c]));
  return obj;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Figure 15", "deadline-miss rate vs RTT/2 per scheduler");

  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 30000;
  cfg.workload.seed = 1;
  std::string out_dir;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      auto& f = cfg.workload.fronthaul_faults;
      f.loss_prob = i + 1 < argc && argv[i + 1][0] != '-'
                        ? std::atof(argv[++i]) : 0.01;
      f.late_prob = f.loss_prob;
      cfg.degrade.enabled = true;
      std::printf("faults enabled: loss/late prob %.3f, degradation on\n",
                  f.loss_prob);
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      cfg.adaptive.enabled = true;
      std::printf("online adaptive estimators enabled\n");
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--faults [P]] [--adaptive] [--out DIR]\n",
                   argv[0]);
      return 1;
    }
  }

  bench::print_row({"rtt/2_us", "partitioned", "global_8", "global_16",
                    "rt-opex", "gain_vs_part"});
  std::vector<core::SweepPoint> sweep;
  // Per-scheduler miss-cause totals over the whole sweep, plus the JSON
  // artifact rows (one per run).
  struct CauseTotals {
    std::string label;
    std::array<std::uint64_t, analysis::kNumMissCauses> counts{};
    std::uint64_t misses = 0;
  };
  std::vector<CauseTotals> totals = {
      {"partitioned", {}, 0}, {"global_8", {}, 0},
      {"global_16", {}, 0},   {"rt-opex", {}, 0}};
  bench::JsonValue rows = bench::JsonValue::array();
  std::uint64_t trace_drops_total = 0;
  for (int rtt_us = 400; rtt_us <= 700; rtt_us += 50) {
    cfg.rtt_half = microseconds(rtt_us);
    const auto work = core::make_workload(cfg);

    std::size_t variant = 0;
    const auto run = [&](core::SchedulerKind kind, unsigned cores) {
      cfg.scheduler = kind;
      cfg.global.num_cores = cores;
      // Trace every run; the sweep's heaviest run stays well under the
      // store bound (~1.1M events for 120k subframes).
      obs::Tracer tracer(24, /*ring_capacity=*/1 << 15,
                         /*max_stored_events=*/4 << 20);
      cfg.tracer = &tracer;
      auto result = core::run_scheduler(cfg, work);
      cfg.tracer = nullptr;
      const double rate = result.metrics.miss_rate();

      const obs::TraceStore store = tracer.take();
      CauseTotals& tot = totals[variant];
      bench::warn_on_trace_drops(
          store, "fig15 " + tot.label + " rtt/2=" + std::to_string(rtt_us));
      trace_drops_total += store.total_drops();
      analysis::AnalyzerOptions aopts;
      aopts.nominal_transport = cfg.rtt_half;
      const analysis::AnalysisReport rep = analysis::analyze(store, aopts);
      for (unsigned c = 0; c < analysis::kNumMissCauses; ++c)
        tot.counts[c] += rep.cause_counts[c];
      tot.misses += rep.misses;

      const auto& hist = result.metrics.processing_us_hist;
      rows.push(bench::JsonValue::object()
                    .set("rtt_half_us", static_cast<double>(rtt_us))
                    .set("scheduler", tot.label)
                    .set("subframes",
                         static_cast<double>(result.metrics.total_subframes))
                    .set("misses",
                         static_cast<double>(result.metrics.deadline_misses))
                    .set("miss_rate", rate)
                    .set("p50_us", hist.p50())
                    .set("p99_us", hist.p99())
                    .set("causes", causes_json(rep.cause_counts))
                    .set("trace_drops",
                         static_cast<double>(store.total_drops())));
      ++variant;
      sweep.push_back({static_cast<double>(rtt_us), std::move(result)});
      return rate;
    };
    const double part = run(core::SchedulerKind::kPartitioned, 0);
    const double g8 = run(core::SchedulerKind::kGlobal, 8);
    const double g16 = run(core::SchedulerKind::kGlobal, 16);
    const double opex = run(core::SchedulerKind::kRtOpex, 0);

    char buf[5][32];
    std::snprintf(buf[0], 32, "%.2e", part);
    std::snprintf(buf[1], 32, "%.2e", g8);
    std::snprintf(buf[2], 32, "%.2e", g16);
    std::snprintf(buf[3], 32, "%.2e", opex);
    std::snprintf(buf[4], 32, "%.1fx", opex > 0 ? part / opex : 999.0);
    bench::print_row({std::to_string(rtt_us), buf[0], buf[1], buf[2], buf[3],
                      buf[4]});
  }
  // Miss-cause breakdown per scheduler, aggregated over the RTT sweep.
  std::printf("\nmiss causes over the sweep (postmortem attribution):\n");
  for (const auto& tot : totals) {
    std::printf("  %-12s", tot.label.c_str());
    for (unsigned c = 1; c < analysis::kNumMissCauses; ++c)
      if (tot.counts[c])
        std::printf(" %s=%llu",
                    analysis::to_string(static_cast<analysis::MissCause>(c)),
                    static_cast<unsigned long long>(tot.counts[c]));
    std::printf("\n");
  }

  const std::string json_dir = out_dir.empty() ? "." : out_dir;
  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig15_deadline_miss")
      .set("config",
           bench::JsonValue::object()
               .set("basestations",
                    static_cast<double>(cfg.workload.num_basestations))
               .set("subframes_per_bs",
                    static_cast<double>(cfg.workload.subframes_per_bs))
               .set("seed", static_cast<double>(cfg.workload.seed))
               .set("loss_prob", cfg.workload.fronthaul_faults.loss_prob)
               .set("late_prob", cfg.workload.fronthaul_faults.late_prob)
               .set("degrade",
                    bench::JsonValue::boolean(cfg.degrade.enabled)))
      .set("trace_drops", static_cast<double>(trace_drops_total))
      .set("rows", std::move(rows));
  bench::write_bench_json(json_dir + "/BENCH_fig15.json", root);
  std::printf("\nwrote %s/BENCH_fig15.json\n", json_dir.c_str());

  if (!out_dir.empty()) {
    core::write_sweep_csv(out_dir + "/fig15_sweep.csv", sweep);
    // Per-scheduler Prometheus snapshots at the last (heaviest) RTT point:
    // the last four sweep entries, one per scheduler variant.
    const std::size_t n = sweep.size();
    const char* names[] = {"partitioned", "global8", "global16", "rtopex"};
    for (std::size_t i = 0; i + 4 <= n && i < 4; ++i)
      core::write_metrics_prom(
          out_dir + "/fig15_" + names[i] + ".prom", sweep[n - 4 + i].result);
    std::printf("\nwrote %s/fig15_sweep.csv and fig15_*.prom\n",
                out_dir.c_str());
  }
  std::printf("\npaper: RT-OPEX ~zero below 500 us and an order of magnitude\n"
              "below partitioned/global throughout; global >= partitioned and\n"
              "insensitive to doubling 8 -> 16 cores.\n");
  return 0;
}
