// Fig. 15 — THE HEADLINE RESULT: deadline-miss rate vs one-way transport
// delay (RTT/2, 0.4–0.7 ms) for the partitioned scheduler, the global
// scheduler with 8 and 16 cores, and RT-OPEX.
//
// Setup as in the paper §4.2: 4 basestations, N = 2, 10 MHz, 100% PRB,
// trace-driven MCS, AWGN at 30 dB, Lm = 4, 30000 subframes per BS.
//
// Expected shape: partitioned rises sharply past 400 us; global tracks
// partitioned from above and is insensitive to 8 -> 16 cores; RT-OPEX stays
// ~zero below 500 us and >= 10x below both everywhere.
//
//   --faults [P]    enable fronthaul loss (prob P, default 0.01) + late
//                   arrivals and graceful degradation: regenerates the miss
//                   curves under the degraded-mode resilience layer.
//   --out DIR       also write the sweep CSV plus per-scheduler Prometheus
//                   .prom metrics snapshots (at the last RTT point) into DIR.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/results_io.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 15", "deadline-miss rate vs RTT/2 per scheduler");

  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 30000;
  cfg.workload.seed = 1;
  std::string out_dir;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      auto& f = cfg.workload.fronthaul_faults;
      f.loss_prob = i + 1 < argc && argv[i + 1][0] != '-'
                        ? std::atof(argv[++i]) : 0.01;
      f.late_prob = f.loss_prob;
      cfg.degrade.enabled = true;
      std::printf("faults enabled: loss/late prob %.3f, degradation on\n",
                  f.loss_prob);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--faults [P]] [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  bench::print_row({"rtt/2_us", "partitioned", "global_8", "global_16",
                    "rt-opex", "gain_vs_part"});
  std::vector<core::SweepPoint> sweep;
  for (int rtt_us = 400; rtt_us <= 700; rtt_us += 50) {
    cfg.rtt_half = microseconds(rtt_us);
    const auto work = core::make_workload(cfg);

    const auto run = [&](core::SchedulerKind kind, unsigned cores) {
      cfg.scheduler = kind;
      cfg.global.num_cores = cores;
      auto result = core::run_scheduler(cfg, work);
      const double rate = result.metrics.miss_rate();
      sweep.push_back({static_cast<double>(rtt_us), std::move(result)});
      return rate;
    };
    const double part = run(core::SchedulerKind::kPartitioned, 0);
    const double g8 = run(core::SchedulerKind::kGlobal, 8);
    const double g16 = run(core::SchedulerKind::kGlobal, 16);
    const double opex = run(core::SchedulerKind::kRtOpex, 0);

    char buf[5][32];
    std::snprintf(buf[0], 32, "%.2e", part);
    std::snprintf(buf[1], 32, "%.2e", g8);
    std::snprintf(buf[2], 32, "%.2e", g16);
    std::snprintf(buf[3], 32, "%.2e", opex);
    std::snprintf(buf[4], 32, "%.1fx", opex > 0 ? part / opex : 999.0);
    bench::print_row({std::to_string(rtt_us), buf[0], buf[1], buf[2], buf[3],
                      buf[4]});
  }
  if (!out_dir.empty()) {
    core::write_sweep_csv(out_dir + "/fig15_sweep.csv", sweep);
    // Per-scheduler Prometheus snapshots at the last (heaviest) RTT point:
    // the last four sweep entries, one per scheduler variant.
    const std::size_t n = sweep.size();
    const char* names[] = {"partitioned", "global8", "global16", "rtopex"};
    for (std::size_t i = 0; i + 4 <= n && i < 4; ++i)
      core::write_metrics_prom(
          out_dir + "/fig15_" + names[i] + ".prom", sweep[n - 4 + i].result);
    std::printf("\nwrote %s/fig15_sweep.csv and fig15_*.prom\n",
                out_dir.c_str());
  }
  std::printf("\npaper: RT-OPEX ~zero below 500 us and an order of magnitude\n"
              "below partitioned/global throughout; global >= partitioned and\n"
              "insensitive to doubling 8 -> 16 cores.\n");
  return 0;
}
