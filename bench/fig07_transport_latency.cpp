// Fig. 7 — One-way IQ transport latency vs number of antennas/radios for
// 5 MHz and 10 MHz bandwidth (WARP radios on 1 GbE aggregated into the
// GPP's 10 GbE port). Serialization dominates; at 10 MHz the latency
// crosses ~0.9 ms near 8 antennas — the paper's supportable maximum.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "transport/transport.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Figure 7", "one-way transport latency vs antennas");

  const transport::IqTransportModel model;
  Rng rng(1);
  bench::print_row({"antennas", "5MHz_mean", "5MHz_max", "10MHz_mean",
                    "10MHz_max"});
  for (unsigned n = 1; n <= 16; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto bw : {phy::Bandwidth::kMHz5, phy::Bandwidth::kMHz10}) {
      RunningStats s;
      for (int i = 0; i < 5000; ++i)
        s.add(to_us(model.sample_one_way(bw, n, rng)));
      row.push_back(bench::fmt(s.mean(), 0));
      row.push_back(bench::fmt(s.max(), 0));
    }
    bench::print_row(row);
  }

  // The paper's conclusion from this figure.
  for (unsigned n = 1; n <= 16; ++n) {
    if (to_us(model.one_way_nominal(phy::Bandwidth::kMHz10, n)) > 1000.0) {
      std::printf("\nat 10 MHz, latency exceeds 1 ms beyond %u antennas "
                  "(paper: at most 8 antennas supportable)\n", n - 1);
      break;
    }
  }
  return 0;
}
