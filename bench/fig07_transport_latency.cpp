// Fig. 7 — One-way IQ transport latency vs number of antennas/radios for
// 5 MHz and 10 MHz bandwidth (WARP radios on 1 GbE aggregated into the
// GPP's 10 GbE port). Serialization dominates; at 10 MHz the latency
// crosses ~0.9 ms near 8 antennas — the paper's supportable maximum.
//
// Key metrics are emitted as BENCH_fig07.json into --out DIR (default: the
// working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "transport/transport.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 7", "one-way transport latency vs antennas");

  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  const transport::IqTransportModel model;
  Rng rng(1);
  bench::JsonValue rows = bench::JsonValue::array();
  bench::print_row({"antennas", "5MHz_mean", "5MHz_max", "10MHz_mean",
                    "10MHz_max"});
  for (unsigned n = 1; n <= 16; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    bench::JsonValue jrow =
        bench::JsonValue::object().set("antennas", static_cast<double>(n));
    for (const auto bw : {phy::Bandwidth::kMHz5, phy::Bandwidth::kMHz10}) {
      RunningStats s;
      for (int i = 0; i < 5000; ++i)
        s.add(to_us(model.sample_one_way(bw, n, rng)));
      row.push_back(bench::fmt(s.mean(), 0));
      row.push_back(bench::fmt(s.max(), 0));
      const std::string key = bw == phy::Bandwidth::kMHz5 ? "mhz5" : "mhz10";
      jrow.set(key + "_mean_us", s.mean()).set(key + "_max_us", s.max());
    }
    bench::print_row(row);
    rows.push(std::move(jrow));
  }

  // The paper's conclusion from this figure.
  unsigned supportable = 16;
  for (unsigned n = 1; n <= 16; ++n) {
    if (to_us(model.one_way_nominal(phy::Bandwidth::kMHz10, n)) > 1000.0) {
      supportable = n - 1;
      std::printf("\nat 10 MHz, latency exceeds 1 ms beyond %u antennas "
                  "(paper: at most 8 antennas supportable)\n", n - 1);
      break;
    }
  }

  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig07_transport_latency")
      .set("config", bench::JsonValue::object()
                         .set("samples_per_point", 5000.0)
                         .set("max_antennas", 16.0))
      .set("latency_vs_antennas", std::move(rows))
      .set("supportable_antennas_10mhz", static_cast<double>(supportable));
  bench::write_bench_json(out_dir + "/BENCH_fig07.json", root);
  std::printf("wrote %s/BENCH_fig07.json\n", out_dir.c_str());
  return 0;
}
