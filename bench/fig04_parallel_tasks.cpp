// Fig. 4 — Task execution times on multiple cores: the FFT task nearly
// halves on two cores (<= ~6 us residual); the decode task at MCS 27 drops
// from ~980 us to ~670 us (a ~310 us serial residue).
//
// Virtual-time reproduction from the calibrated task-cost model: the target
// host has a single core, so two-core wall-clock cannot be measured here
// (see DESIGN.md §2). The per-subtask split itself is exercised for real by
// tests/phy/test_chain_sweep.cpp and the real-thread runtime.
//
// Key metrics are emitted as BENCH_fig04.json into --out DIR (default: the
// working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "model/task_cost_model.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 4", "task times on 1 vs 2 cores (virtual time)");

  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  const model::TaskCostModel cost(model::paper_gpp_model(), 2, 50);
  const Duration delta = microseconds(20);  // migration/fork overhead

  std::printf("\n(a) FFT task (N = 2, 28 subtasks)\n");
  bench::print_row({"cores", "time_us"});
  const auto c = cost.costs(27, 2, 0);
  const double fft_1 = to_us(c.fft);
  // Two cores: 14 subtasks each; the second core pays the handoff once.
  const double fft_2 =
      to_us(std::max<Duration>(14 * c.fft_subtask, delta + 14 * c.fft_subtask));
  bench::print_row({"1", bench::fmt(fft_1, 0)});
  bench::print_row({"2", bench::fmt(fft_2, 0)});
  std::printf("overhead vs ideal half: %.0f us (paper: <= 6 us ideal + ~18 us when migrated)\n",
              fft_2 - fft_1 / 2.0);

  std::printf("\n(b) decode task at MCS 27\n");
  bench::print_row({"L", "1 core", "2 cores", "saving"});
  bench::JsonValue decode_rows = bench::JsonValue::array();
  for (unsigned l = 1; l <= 4; ++l) {
    const auto cl = cost.costs(27, l, 0);
    const double serial = to_us(cl.decode);
    // Two cores: serial residue + half the code blocks locally while the
    // other half (+ handoff) runs remotely.
    const Duration half =
        std::max<Duration>(3 * cl.decode_subtask,
                           delta + 3 * cl.decode_subtask);
    const double parallel = to_us(cl.decode_serial() + half);
    bench::print_row({std::to_string(l), bench::fmt(serial, 0),
                      bench::fmt(parallel, 0),
                      bench::fmt(serial - parallel, 0)});
    decode_rows.push(bench::JsonValue::object()
                         .set("iterations", static_cast<double>(l))
                         .set("one_core_us", serial)
                         .set("two_cores_us", parallel)
                         .set("saving_us", serial - parallel));
  }
  std::printf("paper anchor at its operating point: 980 -> 670 us (~310 us saving)\n");

  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig04_parallel_tasks")
      .set("config", bench::JsonValue::object()
                         .set("mcs", 27.0)
                         .set("delta_us", to_us(delta)))
      .set("fft", bench::JsonValue::object()
                      .set("one_core_us", fft_1)
                      .set("two_cores_us", fft_2)
                      .set("overhead_vs_half_us", fft_2 - fft_1 / 2.0))
      .set("decode", std::move(decode_rows));
  bench::write_bench_json(out_dir + "/BENCH_fig04.json", root);
  std::printf("wrote %s/BENCH_fig04.json\n", out_dir.c_str());
  return 0;
}
