// Fig. 4 — Task execution times on multiple cores: the FFT task nearly
// halves on two cores (<= ~6 us residual); the decode task at MCS 27 drops
// from ~980 us to ~670 us (a ~310 us serial residue).
//
// Virtual-time reproduction from the calibrated task-cost model: the target
// host has a single core, so two-core wall-clock cannot be measured here
// (see DESIGN.md §2). The per-subtask split itself is exercised for real by
// tests/phy/test_chain_sweep.cpp and the real-thread runtime.
#include <cstdio>

#include "bench_util.hpp"
#include "model/task_cost_model.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Figure 4", "task times on 1 vs 2 cores (virtual time)");

  const model::TaskCostModel cost(model::paper_gpp_model(), 2, 50);
  const Duration delta = microseconds(20);  // migration/fork overhead

  std::printf("\n(a) FFT task (N = 2, 28 subtasks)\n");
  bench::print_row({"cores", "time_us"});
  const auto c = cost.costs(27, 2, 0);
  const double fft_1 = to_us(c.fft);
  // Two cores: 14 subtasks each; the second core pays the handoff once.
  const double fft_2 =
      to_us(std::max<Duration>(14 * c.fft_subtask, delta + 14 * c.fft_subtask));
  bench::print_row({"1", bench::fmt(fft_1, 0)});
  bench::print_row({"2", bench::fmt(fft_2, 0)});
  std::printf("overhead vs ideal half: %.0f us (paper: <= 6 us ideal + ~18 us when migrated)\n",
              fft_2 - fft_1 / 2.0);

  std::printf("\n(b) decode task at MCS 27\n");
  bench::print_row({"L", "1 core", "2 cores", "saving"});
  for (unsigned l = 1; l <= 4; ++l) {
    const auto cl = cost.costs(27, l, 0);
    const double serial = to_us(cl.decode);
    // Two cores: serial residue + half the code blocks locally while the
    // other half (+ handoff) runs remotely.
    const Duration half =
        std::max<Duration>(3 * cl.decode_subtask,
                           delta + 3 * cl.decode_subtask);
    const double parallel = to_us(cl.decode_serial() + half);
    bench::print_row({std::to_string(l), bench::fmt(serial, 0),
                      bench::fmt(parallel, 0),
                      bench::fmt(serial - parallel, 0)});
  }
  std::printf("paper anchor at its operating point: 980 -> 670 us (~310 us saving)\n");
  return 0;
}
