// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <string>
#include <vector>

#include "model/timing_model.hpp"
#include "obs/histogram.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::bench {

/// Prints a header banner naming the paper artifact being regenerated.
void print_banner(const std::string& figure, const std::string& description);

/// Prints one row of space-separated cells (first column left-aligned).
void print_row(const std::vector<std::string>& cells);

std::string fmt(double v, int precision = 2);

/// The shared latency-summary row every figure binary uses: mean and the
/// requested quantiles of a bounded histogram, formatted with `precision`.
/// Replaces the per-binary hand-rolled mean/percentile loops.
std::vector<std::string> summary_cells(const std::string& label,
                                       const obs::Histogram& hist,
                                       const std::vector<double>& quantiles,
                                       int precision = 0);

/// Measures the real PHY chain's wall-clock uplink processing time.
/// Each measurement runs TX -> AWGN channel -> full RX on this host and
/// records (N, K, D, L, time_us) — the inputs to the Eq. (1) fit.
struct PhyMeasurementConfig {
  std::vector<unsigned> mcs_values;
  std::vector<double> snr_values_db = {30.0};
  std::vector<unsigned> antenna_counts = {2};
  unsigned repetitions = 3;
  phy::Bandwidth bandwidth = phy::Bandwidth::kMHz10;
  unsigned max_iterations = 4;
  std::uint64_t seed = 1;
};

std::vector<model::TimingMeasurement> measure_phy_chain(
    const PhyMeasurementConfig& config);

}  // namespace rtopex::bench
