// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/timing_model.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::bench {

/// Minimal JSON value tree for the BENCH_<name>.json artifacts: enough to
/// express the config + per-point result objects the figure binaries emit
/// (and CI uploads), nothing more. Field order is preserved so the files
/// diff cleanly across runs.
class JsonValue {
 public:
  static JsonValue object() { return JsonValue(Kind::kObject); }
  static JsonValue array() { return JsonValue(Kind::kArray); }
  static JsonValue number(double v) {
    JsonValue j(Kind::kNumber);
    j.number_ = v;
    return j;
  }
  static JsonValue string(std::string v) {
    JsonValue j(Kind::kString);
    j.string_ = std::move(v);
    return j;
  }
  static JsonValue boolean(bool v) {
    JsonValue j(Kind::kBool);
    j.bool_ = v;
    return j;
  }

  /// Object field setters (assert-free: calling on a non-object converts
  /// it, losing prior content, so keep kinds straight). Returns *this for
  /// chaining.
  JsonValue& set(const std::string& key, JsonValue value);
  JsonValue& set(const std::string& key, double value) {
    return set(key, number(value));
  }
  JsonValue& set(const std::string& key, const std::string& value) {
    return set(key, string(value));
  }
  JsonValue& set(const std::string& key, const char* value) {
    return set(key, string(value));
  }

  /// Array append; returns a reference to the appended element.
  JsonValue& push(JsonValue value);

  std::string dump() const;  ///< compact single-line serialization.

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

/// Writes `root` (plus a trailing newline) to `path`. Throws
/// std::runtime_error on I/O failure.
void write_bench_json(const std::string& path, const JsonValue& root);

/// Prints a stderr warning when the trace lost events (full per-core ring
/// or saturated collector store) — a bench whose miss-cause breakdown came
/// from a lossy trace should say so.
void warn_on_trace_drops(const obs::TraceStore& store,
                         const std::string& context);

/// Prints a header banner naming the paper artifact being regenerated.
void print_banner(const std::string& figure, const std::string& description);

/// Prints one row of space-separated cells (first column left-aligned).
void print_row(const std::vector<std::string>& cells);

std::string fmt(double v, int precision = 2);

/// The shared latency-summary row every figure binary uses: mean and the
/// requested quantiles of a bounded histogram, formatted with `precision`.
/// Replaces the per-binary hand-rolled mean/percentile loops.
std::vector<std::string> summary_cells(const std::string& label,
                                       const obs::Histogram& hist,
                                       const std::vector<double>& quantiles,
                                       int precision = 0);

/// Measures the real PHY chain's wall-clock uplink processing time.
/// Each measurement runs TX -> AWGN channel -> full RX on this host and
/// records (N, K, D, L, time_us) — the inputs to the Eq. (1) fit.
struct PhyMeasurementConfig {
  std::vector<unsigned> mcs_values;
  std::vector<double> snr_values_db = {30.0};
  std::vector<unsigned> antenna_counts = {2};
  unsigned repetitions = 3;
  phy::Bandwidth bandwidth = phy::Bandwidth::kMHz10;
  unsigned max_iterations = 4;
  std::uint64_t seed = 1;
};

std::vector<model::TimingMeasurement> measure_phy_chain(
    const PhyMeasurementConfig& config);

}  // namespace rtopex::bench
