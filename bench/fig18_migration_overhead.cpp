// Fig. 18 — Comparison of processing times of local and migrated tasks.
// The paper measures a fixed ~18-20 us migration overhead for both FFT and
// decode subtasks (fetching per-basestation state from shared memory).
//
// Two reproductions:
//  1. A direct micro-measurement of this repo's migration mechanism
//     (mailbox claim/fill/take + state-table round trip) on this host.
//  2. The real-thread runtime's per-stage timings with migration enabled,
//     local vs migrated (meaningful on multicore hosts; on a single-core
//     host the hosting thread timeshares, inflating the numbers).
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/thread_utils.hpp"
#include "runtime/cpu_state_table.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/node_runtime.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Figure 18", "local vs migrated task processing time");

  // --- 1. handoff-mechanism micro-benchmark ---
  {
    runtime::Mailbox box;
    runtime::CpuStateTable table(8);
    std::atomic<std::size_t> next{0}, completed{0};
    RunningStats s;
    for (int i = 0; i < 20000; ++i) {
      const std::int64_t t0 = monotonic_ns();
      table.set(3, runtime::CoreActivity::kIdle, 1000000);
      const auto snap = table.get(3);
      (void)snap;
      box.try_claim();
      runtime::MigratedChunk chunk;
      chunk.first = 0;
      chunk.count = 1;
      chunk.next_index = &next;
      chunk.completed = &completed;
      box.fill(std::move(chunk));
      runtime::MigratedChunk taken;
      box.try_take(taken);
      box.release();
      const std::int64_t t1 = monotonic_ns();
      s.add(static_cast<double>(t1 - t0) / 1000.0);
    }
    std::printf("\nmailbox + state-table handoff round trip: "
                "mean %.2f us, max %.1f us\n", s.mean(), s.max());
    std::printf("(the paper's ~20 us overhead is dominated by the shared-"
                "memory state fetch,\n which the virtual-time model charges "
                "as delta = 20 us per migrated chunk)\n");
  }

  // --- 2. real-thread runtime, local vs migrated stage timings ---
  runtime::RuntimeConfig cfg;
  cfg.mode = runtime::RuntimeMode::kRtOpex;
  cfg.num_basestations = 2;
  cfg.cores_per_bs = 2;
  cfg.subframes_per_bs = 30;
  cfg.subframe_period = milliseconds(60);
  cfg.deadline_budget = milliseconds(120);
  cfg.mcs_cycle = {27, 4};
  cfg.phy.bandwidth = phy::Bandwidth::kMHz10;
  cfg.seed = 18;
  runtime::NodeRuntime rt(cfg);
  const auto report = rt.run();

  RunningStats fft_local, fft_mig, dec_local, dec_mig;
  for (const auto& r : report.records) {
    if (r.mcs != 27) continue;
    (r.timing.fft_migrated > 0 ? fft_mig : fft_local)
        .add(to_us(r.timing.fft));
    (r.timing.decode_migrated > 0 ? dec_mig : dec_local)
        .add(to_us(r.timing.decode));
  }
  std::printf("\nreal-thread runtime, MCS 27 stage times on this host:\n");
  bench::print_row({"task", "runs", "mean_us"});
  bench::print_row({"fft (all local)", std::to_string(fft_local.count()),
                    bench::fmt(fft_local.mean(), 0)});
  bench::print_row({"fft (migrated)", std::to_string(fft_mig.count()),
                    bench::fmt(fft_mig.mean(), 0)});
  bench::print_row({"decode (all local)", std::to_string(dec_local.count()),
                    bench::fmt(dec_local.mean(), 0)});
  bench::print_row({"decode (migrated)", std::to_string(dec_mig.count()),
                    bench::fmt(dec_mig.mean(), 0)});
  std::printf("migrated subtasks: %zu, recoveries: %zu\n", report.migrations,
              report.recoveries);
  std::printf("(single-core hosts timeshare the hosting thread, so migrated "
              "numbers are only\n meaningful on multicore hardware; paper: "
              "FFT 108 -> 126 us, decode +~20 us)\n");
  return 0;
}
