// Fig. 18 — Comparison of processing times of local and migrated tasks.
// The paper measures a fixed ~18-20 us migration overhead for both FFT and
// decode subtasks (fetching per-basestation state from shared memory).
//
// Two reproductions:
//  1. A direct micro-measurement of this repo's migration mechanism
//     (mailbox claim/fill/take + state-table round trip) on this host.
//  2. The real-thread runtime's per-stage timings with migration enabled,
//     local vs migrated (meaningful on multicore hosts; on a single-core
//     host the hosting thread timeshares, inflating the numbers).
//
// Key metrics are emitted as BENCH_fig18.json into --out DIR (default: the
// working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/thread_utils.hpp"
#include "runtime/cpu_state_table.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/node_runtime.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 18", "local vs migrated task processing time");

  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  double handoff_mean_us = 0.0, handoff_max_us = 0.0;

  // --- 1. handoff-mechanism micro-benchmark ---
  {
    runtime::Mailbox box;
    runtime::CpuStateTable table(8);
    std::atomic<std::size_t> next{0}, completed{0};
    RunningStats s;
    for (int i = 0; i < 20000; ++i) {
      const std::int64_t t0 = monotonic_ns();
      table.set(3, runtime::CoreActivity::kIdle, 1000000);
      const auto snap = table.get(3);
      (void)snap;
      box.try_claim();
      runtime::MigratedChunk chunk;
      chunk.first = 0;
      chunk.count = 1;
      chunk.next_index = &next;
      chunk.completed = &completed;
      box.fill(std::move(chunk));
      runtime::MigratedChunk taken;
      box.try_take(taken);
      box.release();
      const std::int64_t t1 = monotonic_ns();
      s.add(static_cast<double>(t1 - t0) / 1000.0);
    }
    std::printf("\nmailbox + state-table handoff round trip: "
                "mean %.2f us, max %.1f us\n", s.mean(), s.max());
    handoff_mean_us = s.mean();
    handoff_max_us = s.max();
    std::printf("(the paper's ~20 us overhead is dominated by the shared-"
                "memory state fetch,\n which the virtual-time model charges "
                "as delta = 20 us per migrated chunk)\n");
  }

  // --- 2. real-thread runtime, local vs migrated stage timings ---
  runtime::RuntimeConfig cfg;
  cfg.mode = runtime::RuntimeMode::kRtOpex;
  cfg.num_basestations = 2;
  cfg.cores_per_bs = 2;
  cfg.subframes_per_bs = 30;
  cfg.subframe_period = milliseconds(60);
  cfg.deadline_budget = milliseconds(120);
  cfg.mcs_cycle = {27, 4};
  cfg.phy.bandwidth = phy::Bandwidth::kMHz10;
  cfg.seed = 18;
  runtime::NodeRuntime rt(cfg);
  const auto report = rt.run();

  RunningStats fft_local, fft_mig, dec_local, dec_mig;
  for (const auto& r : report.records) {
    if (r.mcs != 27) continue;
    (r.timing.fft_migrated > 0 ? fft_mig : fft_local)
        .add(to_us(r.timing.fft));
    (r.timing.decode_migrated > 0 ? dec_mig : dec_local)
        .add(to_us(r.timing.decode));
  }
  std::printf("\nreal-thread runtime, MCS 27 stage times on this host:\n");
  bench::print_row({"task", "runs", "mean_us"});
  bench::print_row({"fft (all local)", std::to_string(fft_local.count()),
                    bench::fmt(fft_local.mean(), 0)});
  bench::print_row({"fft (migrated)", std::to_string(fft_mig.count()),
                    bench::fmt(fft_mig.mean(), 0)});
  bench::print_row({"decode (all local)", std::to_string(dec_local.count()),
                    bench::fmt(dec_local.mean(), 0)});
  bench::print_row({"decode (migrated)", std::to_string(dec_mig.count()),
                    bench::fmt(dec_mig.mean(), 0)});
  std::printf("migrated subtasks: %zu, recoveries: %zu\n", report.migrations,
              report.recoveries);
  std::printf("(single-core hosts timeshare the hosting thread, so migrated "
              "numbers are only\n meaningful on multicore hardware; paper: "
              "FFT 108 -> 126 us, decode +~20 us)\n");

  const auto stage_row = [](const RunningStats& s) {
    return bench::JsonValue::object()
        .set("runs", static_cast<double>(s.count()))
        .set("mean_us", s.count() > 0 ? s.mean() : 0.0);
  };
  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig18_migration_overhead")
      .set("config", bench::JsonValue::object()
                         .set("basestations", 2.0)
                         .set("subframes_per_bs", 30.0)
                         .set("mcs", 27.0))
      .set("handoff_round_trip",
           bench::JsonValue::object()
               .set("mean_us", handoff_mean_us)
               .set("max_us", handoff_max_us))
      .set("fft_local", stage_row(fft_local))
      .set("fft_migrated", stage_row(fft_mig))
      .set("decode_local", stage_row(dec_local))
      .set("decode_migrated", stage_row(dec_mig))
      .set("migrations", static_cast<double>(report.migrations))
      .set("recoveries", static_cast<double>(report.recoveries));
  bench::write_bench_json(out_dir + "/BENCH_fig18.json", root);
  std::printf("wrote %s/BENCH_fig18.json\n", out_dir.c_str());
  return 0;
}
