// Fig. 1 — Variations in cellular load traces: normalized load of two
// basestations over a 50 ms interval at 1 ms granularity.
#include <cstdio>

#include "bench_util.hpp"
#include "trace/load_trace.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Figure 1",
                      "per-millisecond load variation of two basestations");
  const auto params = trace::metropolitan_preset(2);
  const auto bs1 = trace::generate_load_trace(params[0], 50, 1001);
  const auto bs2 = trace::generate_load_trace(params[1], 50, 1002);

  bench::print_row({"time_ms", "bs1_load", "bs2_load"});
  for (std::size_t t = 0; t < 50; ++t)
    bench::print_row({std::to_string(t + 1), bench::fmt(bs1.load(t)),
                      bench::fmt(bs2.load(t))});

  // The paper's qualitative claim: consecutive subframes differ
  // considerably. Report the mean absolute 1 ms load delta.
  double d1 = 0.0, d2 = 0.0;
  for (std::size_t t = 1; t < 50; ++t) {
    d1 += std::abs(bs1.load(t) - bs1.load(t - 1));
    d2 += std::abs(bs2.load(t) - bs2.load(t - 1));
  }
  std::printf("\nmean |delta load| per 1 ms:  BS1 %.3f   BS2 %.3f\n", d1 / 49,
              d2 / 49);
  return 0;
}
