// Fig. 1 — Variations in cellular load traces: normalized load of two
// basestations over a 50 ms interval at 1 ms granularity.
//
// Key metrics (per-ms loads, mean |delta|) are emitted as BENCH_fig01.json
// into --out DIR (default: the working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "trace/load_trace.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 1",
                      "per-millisecond load variation of two basestations");

  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  const auto params = trace::metropolitan_preset(2);
  const auto bs1 = trace::generate_load_trace(params[0], 50, 1001);
  const auto bs2 = trace::generate_load_trace(params[1], 50, 1002);

  bench::JsonValue rows = bench::JsonValue::array();
  bench::print_row({"time_ms", "bs1_load", "bs2_load"});
  for (std::size_t t = 0; t < 50; ++t) {
    bench::print_row({std::to_string(t + 1), bench::fmt(bs1.load(t)),
                      bench::fmt(bs2.load(t))});
    rows.push(bench::JsonValue::object()
                  .set("time_ms", static_cast<double>(t + 1))
                  .set("bs1_load", bs1.load(t))
                  .set("bs2_load", bs2.load(t)));
  }

  // The paper's qualitative claim: consecutive subframes differ
  // considerably. Report the mean absolute 1 ms load delta.
  double d1 = 0.0, d2 = 0.0;
  for (std::size_t t = 1; t < 50; ++t) {
    d1 += std::abs(bs1.load(t) - bs1.load(t - 1));
    d2 += std::abs(bs2.load(t) - bs2.load(t - 1));
  }
  std::printf("\nmean |delta load| per 1 ms:  BS1 %.3f   BS2 %.3f\n", d1 / 49,
              d2 / 49);

  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig01_load_traces")
      .set("config", bench::JsonValue::object()
                         .set("basestations", 2.0)
                         .set("interval_ms", 50.0))
      .set("loads", std::move(rows))
      .set("mean_abs_delta",
           bench::JsonValue::object().set("bs1", d1 / 49).set("bs2", d2 / 49));
  bench::write_bench_json(out_dir + "/BENCH_fig01.json", root);
  std::printf("wrote %s/BENCH_fig01.json\n", out_dir.c_str());
  return 0;
}
