// Fig. 17 — Deadline misses vs offered load (RTT/2 = 500 us): the traffic
// of every basestation is scaled to a target mean load (per-subframe MCS
// still varies around it, as real traffic does); the x-axis is the mean
// offered PHY throughput. RT-OPEX's gains concentrate at high load; at a
// 1e-2 miss-rate threshold it supports substantially more load than the
// partitioned scheduler (paper: 31 vs 27 Mbps, ~15%).
//
// Every run is traced and fed through the deadline-miss postmortem
// (obs/analysis): a per-scheduler miss-cause breakdown follows the table,
// and the sweep is emitted as BENCH_fig17.json ([--out DIR], default the
// working directory).
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "obs/analysis/analysis.hpp"

using namespace rtopex;
namespace analysis = rtopex::obs::analysis;

namespace {

double supported_mbps(const std::vector<std::pair<double, double>>& curve,
                      double threshold) {
  double best = 0.0;
  for (const auto& [mbps, rate] : curve)
    if (rate <= threshold) best = std::max(best, mbps);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Figure 17",
                      "deadline misses vs offered load (RTT/2 = 500 us)");

  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 10000;
  cfg.workload.seed = 1;
  cfg.rtt_half = microseconds(500);

  // --faults [P]: fronthaul loss/late arrivals + graceful degradation —
  // shifts the supported-load knee; lost subframes never count as misses.
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      auto& f = cfg.workload.fronthaul_faults;
      f.loss_prob = i + 1 < argc ? std::atof(argv[++i]) : 0.01;
      f.late_prob = f.loss_prob;
      cfg.degrade.enabled = true;
      std::printf("faults enabled: loss/late prob %.3f, degradation on\n",
                  f.loss_prob);
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      cfg.adaptive.enabled = true;
      std::printf("online adaptive estimators enabled\n");
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--faults [P]] [--adaptive] [--out DIR]\n",
                   argv[0]);
      return 1;
    }
  }

  std::vector<std::pair<double, double>> part_curve, opex_curve;

  struct CauseTotals {
    std::string label;
    std::array<std::uint64_t, analysis::kNumMissCauses> counts{};
  };
  std::vector<CauseTotals> totals = {
      {"partitioned", {}}, {"global_8", {}}, {"rt-opex", {}}};
  bench::JsonValue rows = bench::JsonValue::array();
  std::uint64_t trace_drops_total = 0;

  bench::print_row({"mean_load", "load_mbps", "partitioned", "global_8",
                    "rt-opex"});
  for (double mean = 0.40; mean <= 1.001; mean += 0.05) {
    cfg.workload.mean_load_override = mean;
    const auto work = core::make_workload(cfg);
    double mbps = 0.0;
    for (const auto& w : work)
      mbps += phy::transport_block_size(w.mcs, 50) / 1000.0;
    mbps /= static_cast<double>(work.size());

    std::size_t variant = 0;
    const auto run = [&](core::SchedulerKind kind) {
      cfg.scheduler = kind;
      cfg.global.num_cores = 8;
      obs::Tracer tracer(24, /*ring_capacity=*/1 << 15,
                         /*max_stored_events=*/4 << 20);
      cfg.tracer = &tracer;
      const auto result = core::run_scheduler(cfg, work);
      cfg.tracer = nullptr;
      const double rate = result.metrics.miss_rate();

      const obs::TraceStore store = tracer.take();
      CauseTotals& tot = totals[variant++];
      bench::warn_on_trace_drops(
          store, "fig17 " + tot.label + " load=" + bench::fmt(mean));
      trace_drops_total += store.total_drops();
      analysis::AnalyzerOptions aopts;
      aopts.nominal_transport = cfg.rtt_half;
      const analysis::AnalysisReport rep = analysis::analyze(store, aopts);
      bench::JsonValue causes = bench::JsonValue::object();
      for (unsigned c = 1; c < analysis::kNumMissCauses; ++c) {
        tot.counts[c] += rep.cause_counts[c];
        causes.set(analysis::to_string(static_cast<analysis::MissCause>(c)),
                   static_cast<double>(rep.cause_counts[c]));
      }
      rows.push(bench::JsonValue::object()
                    .set("mean_load", mean)
                    .set("load_mbps", mbps)
                    .set("scheduler", tot.label)
                    .set("subframes",
                         static_cast<double>(result.metrics.total_subframes))
                    .set("misses",
                         static_cast<double>(result.metrics.deadline_misses))
                    .set("miss_rate", rate)
                    .set("p50_us", result.metrics.processing_us_hist.p50())
                    .set("p99_us", result.metrics.processing_us_hist.p99())
                    .set("causes", std::move(causes))
                    .set("trace_drops",
                         static_cast<double>(store.total_drops())));
      return rate;
    };
    const double part = run(core::SchedulerKind::kPartitioned);
    const double glob = run(core::SchedulerKind::kGlobal);
    const double opex = run(core::SchedulerKind::kRtOpex);
    part_curve.push_back({mbps, part});
    opex_curve.push_back({mbps, opex});

    char b[3][32];
    std::snprintf(b[0], 32, "%.2e", part);
    std::snprintf(b[1], 32, "%.2e", glob);
    std::snprintf(b[2], 32, "%.2e", opex);
    bench::print_row({bench::fmt(mean), bench::fmt(mbps, 1), b[0], b[1],
                      b[2]});
  }

  std::printf("\nmiss causes over the sweep (postmortem attribution):\n");
  for (const auto& tot : totals) {
    std::printf("  %-12s", tot.label.c_str());
    for (unsigned c = 1; c < analysis::kNumMissCauses; ++c)
      if (tot.counts[c])
        std::printf(" %s=%llu",
                    analysis::to_string(static_cast<analysis::MissCause>(c)),
                    static_cast<unsigned long long>(tot.counts[c]));
    std::printf("\n");
  }

  const std::string json_dir = out_dir.empty() ? "." : out_dir;
  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig17_miss_vs_load")
      .set("config",
           bench::JsonValue::object()
               .set("basestations",
                    static_cast<double>(cfg.workload.num_basestations))
               .set("subframes_per_bs",
                    static_cast<double>(cfg.workload.subframes_per_bs))
               .set("seed", static_cast<double>(cfg.workload.seed))
               .set("rtt_half_us", to_us(cfg.rtt_half))
               .set("loss_prob", cfg.workload.fronthaul_faults.loss_prob)
               .set("late_prob", cfg.workload.fronthaul_faults.late_prob)
               .set("degrade",
                    bench::JsonValue::boolean(cfg.degrade.enabled))
               .set("adaptive",
                    bench::JsonValue::boolean(cfg.adaptive.enabled)))
      .set("trace_drops", static_cast<double>(trace_drops_total))
      .set("rows", std::move(rows));
  bench::write_bench_json(json_dir + "/BENCH_fig17.json", root);
  std::printf("\nwrote %s/BENCH_fig17.json\n", json_dir.c_str());

  const double part_max = supported_mbps(part_curve, 1e-2);
  const double opex_max = supported_mbps(opex_curve, 1e-2);
  std::printf("\nsupported mean load at 1e-2 miss threshold:\n");
  std::printf("  partitioned: %.1f Mbps\n  rt-opex:     %.1f Mbps  (+%.0f%%)\n",
              part_max, opex_max, 100.0 * (opex_max - part_max) / part_max);
  std::printf("paper: 31 vs 27 Mbps, ~15%% higher load for RT-OPEX.\n");
  return 0;
}
