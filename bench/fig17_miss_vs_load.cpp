// Fig. 17 — Deadline misses vs offered load (RTT/2 = 500 us): the traffic
// of every basestation is scaled to a target mean load (per-subframe MCS
// still varies around it, as real traffic does); the x-axis is the mean
// offered PHY throughput. RT-OPEX's gains concentrate at high load; at a
// 1e-2 miss-rate threshold it supports substantially more load than the
// partitioned scheduler (paper: 31 vs 27 Mbps, ~15%).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "core/experiment.hpp"

using namespace rtopex;

namespace {

double supported_mbps(const std::vector<std::pair<double, double>>& curve,
                      double threshold) {
  double best = 0.0;
  for (const auto& [mbps, rate] : curve)
    if (rate <= threshold) best = std::max(best, mbps);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Figure 17",
                      "deadline misses vs offered load (RTT/2 = 500 us)");

  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 10000;
  cfg.workload.seed = 1;
  cfg.rtt_half = microseconds(500);

  // --faults [P]: fronthaul loss/late arrivals + graceful degradation —
  // shifts the supported-load knee; lost subframes never count as misses.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      auto& f = cfg.workload.fronthaul_faults;
      f.loss_prob = i + 1 < argc ? std::atof(argv[++i]) : 0.01;
      f.late_prob = f.loss_prob;
      cfg.degrade.enabled = true;
      std::printf("faults enabled: loss/late prob %.3f, degradation on\n",
                  f.loss_prob);
    } else {
      std::fprintf(stderr, "usage: %s [--faults [P]]\n", argv[0]);
      return 1;
    }
  }

  std::vector<std::pair<double, double>> part_curve, opex_curve;

  bench::print_row({"mean_load", "load_mbps", "partitioned", "global_8",
                    "rt-opex"});
  for (double mean = 0.40; mean <= 1.001; mean += 0.05) {
    cfg.workload.mean_load_override = mean;
    const auto work = core::make_workload(cfg);
    double mbps = 0.0;
    for (const auto& w : work)
      mbps += phy::transport_block_size(w.mcs, 50) / 1000.0;
    mbps /= static_cast<double>(work.size());

    const auto run = [&](core::SchedulerKind kind) {
      cfg.scheduler = kind;
      cfg.global.num_cores = 8;
      return core::run_scheduler(cfg, work).metrics.miss_rate();
    };
    const double part = run(core::SchedulerKind::kPartitioned);
    const double glob = run(core::SchedulerKind::kGlobal);
    const double opex = run(core::SchedulerKind::kRtOpex);
    part_curve.push_back({mbps, part});
    opex_curve.push_back({mbps, opex});

    char b[3][32];
    std::snprintf(b[0], 32, "%.2e", part);
    std::snprintf(b[1], 32, "%.2e", glob);
    std::snprintf(b[2], 32, "%.2e", opex);
    bench::print_row({bench::fmt(mean), bench::fmt(mbps, 1), b[0], b[1],
                      b[2]});
  }

  const double part_max = supported_mbps(part_curve, 1e-2);
  const double opex_max = supported_mbps(opex_curve, 1e-2);
  std::printf("\nsupported mean load at 1e-2 miss threshold:\n");
  std::printf("  partitioned: %.1f Mbps\n  rt-opex:     %.1f Mbps  (+%.0f%%)\n",
              part_max, opex_max, 100.0 * (opex_max - part_max) / part_max);
  std::printf("paper: 31 vs 27 Mbps, ~15%% higher load for RT-OPEX.\n");
  return 0;
}
