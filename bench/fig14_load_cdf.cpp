// Fig. 14 — Basestation load distribution: CDFs of the normalized load of
// the four basestations driving the evaluation (distinct operating points).
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "trace/load_trace.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Figure 14", "per-basestation load CDFs (4 BSs)");

  const auto params = trace::metropolitan_preset(4);
  std::vector<EmpiricalCdf> cdfs;
  for (std::size_t b = 0; b < 4; ++b) {
    const auto t = trace::generate_load_trace(params[b], 30000, 1400 + b);
    cdfs.emplace_back(t.values());
  }

  bench::print_row({"load", "bs1_cdf", "bs2_cdf", "bs3_cdf", "bs4_cdf"});
  for (double load = 0.0; load <= 1.0001; load += 0.1) {
    std::vector<std::string> row = {bench::fmt(load, 1)};
    for (const auto& cdf : cdfs) row.push_back(bench::fmt(cdf(load)));
    bench::print_row(row);
  }
  std::printf("\nmedians: %.2f / %.2f / %.2f / %.2f "
              "(distinct per-BS operating points, as in the paper)\n",
              cdfs[0].quantile(0.5), cdfs[1].quantile(0.5),
              cdfs[2].quantile(0.5), cdfs[3].quantile(0.5));
  return 0;
}
