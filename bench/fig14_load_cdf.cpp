// Fig. 14 — Basestation load distribution: CDFs of the normalized load of
// the four basestations driving the evaluation (distinct operating points).
//
// Key metrics are emitted as BENCH_fig14.json into --out DIR (default: the
// working directory).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "trace/load_trace.hpp"

using namespace rtopex;

int main(int argc, char** argv) {
  bench::print_banner("Figure 14", "per-basestation load CDFs (4 BSs)");

  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 1;
    }
  }

  const auto params = trace::metropolitan_preset(4);
  std::vector<EmpiricalCdf> cdfs;
  for (std::size_t b = 0; b < 4; ++b) {
    const auto t = trace::generate_load_trace(params[b], 30000, 1400 + b);
    cdfs.emplace_back(t.values());
  }

  bench::JsonValue grid = bench::JsonValue::array();
  bench::print_row({"load", "bs1_cdf", "bs2_cdf", "bs3_cdf", "bs4_cdf"});
  for (double load = 0.0; load <= 1.0001; load += 0.1) {
    std::vector<std::string> row = {bench::fmt(load, 1)};
    bench::JsonValue jrow = bench::JsonValue::object().set("load", load);
    for (std::size_t b = 0; b < cdfs.size(); ++b) {
      row.push_back(bench::fmt(cdfs[b](load)));
      jrow.set("bs" + std::to_string(b + 1) + "_cdf", cdfs[b](load));
    }
    bench::print_row(row);
    grid.push(std::move(jrow));
  }
  std::printf("\nmedians: %.2f / %.2f / %.2f / %.2f "
              "(distinct per-BS operating points, as in the paper)\n",
              cdfs[0].quantile(0.5), cdfs[1].quantile(0.5),
              cdfs[2].quantile(0.5), cdfs[3].quantile(0.5));

  bench::JsonValue medians = bench::JsonValue::array();
  for (const auto& cdf : cdfs)
    medians.push(bench::JsonValue::number(cdf.quantile(0.5)));
  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "fig14_load_cdf")
      .set("config", bench::JsonValue::object()
                         .set("basestations", 4.0)
                         .set("subframes", 30000.0))
      .set("cdf_grid", std::move(grid))
      .set("medians", std::move(medians));
  bench::write_bench_json(out_dir + "/BENCH_fig14.json", root);
  std::printf("wrote %s/BENCH_fig14.json\n", out_dir.c_str());
  return 0;
}
