// Model-calibration tool: runs the real PHY chain across an (MCS, SNR)
// grid and fits both models the simulator depends on —
//   * the Eq. (1) timing model (as in Table 1), and
//   * the stochastic iteration model (thresholds + continuation q)
// — so the virtual-time experiments can be re-grounded on any host's or
// basestation's measured behaviour.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "model/calibration.hpp"
#include "phy/uplink_rx.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("Calibration", "fit the iteration model to the real PHY");

  phy::UplinkConfig cfg;
  cfg.bandwidth = phy::Bandwidth::kMHz5;  // fast sweep
  cfg.num_antennas = 2;
  const phy::UplinkTransmitter tx(cfg);
  const phy::UplinkRxProcessor rx(cfg);
  Rng rng(7);

  std::vector<model::IterationSample> samples;
  for (const unsigned mcs : {0u, 5u, 10u, 16u, 21u, 27u}) {
    for (double snr = -4.0; snr <= 24.01; snr += 2.0) {
      for (int rep = 0; rep < 6; ++rep) {
        const auto sf = tx.transmit(mcs, rep, rng.next());
        channel::ChannelConfig ch;
        ch.snr_db = snr;
        ch.num_rx_antennas = cfg.num_antennas;
        const auto rx_samples =
            channel::pass_through_channel(sf.samples, ch, rng.next());
        const auto res = rx.process(rx_samples, mcs, sf.subframe_index);
        samples.push_back({mcs, snr, res.iterations, res.crc_ok});
      }
    }
  }
  std::printf("collected %zu decoder observations\n\n", samples.size());

  const model::IterationModelParams defaults;
  const auto fitted = model::calibrate_iteration_model(samples, defaults);

  bench::print_row({"", "thr_base_db", "thr_slope_db", "q_base", "q_slope"});
  bench::print_row({"simulator default", bench::fmt(defaults.threshold_base_db, 2),
                    bench::fmt(defaults.threshold_slope_db, 2),
                    bench::fmt(defaults.q_base, 2),
                    bench::fmt(defaults.q_slope, 3)});
  bench::print_row({"this PHY (fitted)", bench::fmt(fitted.threshold_base_db, 2),
                    bench::fmt(fitted.threshold_slope_db, 2),
                    bench::fmt(fitted.q_base, 2),
                    bench::fmt(fitted.q_slope, 3)});

  std::printf("\nnote: the simulator's defaults intentionally carry more\n"
              "iteration spread at high margins than this clean AWGN chain —\n"
              "they reflect the paper's field observation that L is\n"
              "non-deterministic even at fixed SNR (§2.1). Use the fitted\n"
              "values to reproduce *this* PHY; use the defaults to reproduce\n"
              "the paper's workload variability.\n");
  return 0;
}
