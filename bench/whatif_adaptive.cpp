// Adaptive-estimator accuracy + what-if replay benchmark -> BENCH_whatif.json.
//
// Part A (fig. 17-style sweep): each load point runs the partitioned and
// RT-OPEX schedulers twice over the same workload — static WCET seeds vs
// online adaptive estimators. Adaptive runs record BOTH the estimate they
// actually admitted with and the static estimate they would have used, so
// the per-subframe |estimate - executed| decode errors are exactly paired.
// The headline number is the error ratio static/adaptive; the acceptance
// gate (--gate R, default 2.0) requires the adaptive estimators to cut the
// mean error by at least that factor on at least one scheduler's sweep
// (RT-OPEX clears it with a wide margin; the partitioned scheduler
// saturates at high load, where subframes that were going to miss either
// way dilute its paired-error win).
//
// Part B (what-if replay): a faulted fig. 15-style partitioned run captures
// its offered workload into the trace; the trace is replayed (a) under the
// original config — the self-replay identity diff must be empty — and (b)
// under RT-OPEX, yielding the counterfactual per-cause miss delta.
//
//   $ ./whatif_adaptive [--quick] [--gate R] [--out DIR]
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "obs/analysis/replay.hpp"

using namespace rtopex;
namespace analysis = rtopex::obs::analysis;

int main(int argc, char** argv) {
  bench::print_banner("What-if / adaptive",
                      "online estimator accuracy + trace replay engine");

  std::string out_dir;
  double gate = 2.0;
  std::size_t subframes = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      subframes = 2000;
    } else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--gate R] [--out DIR]\n",
                   argv[0]);
      return 1;
    }
  }

  // ---- Part A: paired estimator-accuracy sweep --------------------------
  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = subframes;
  cfg.workload.seed = 1;
  cfg.rtt_half = microseconds(500);

  struct SchedTotals {
    core::SchedulerKind kind;
    std::string label;
    double err_used_sum = 0.0;    // adaptive runs: |adaptive est - actual|
    double err_static_sum = 0.0;  // adaptive runs: |static est - actual|
    std::size_t samples = 0;
    std::size_t miss_static = 0;
    std::size_t miss_adaptive = 0;
    std::size_t subframes = 0;
  };
  std::vector<SchedTotals> totals = {
      {core::SchedulerKind::kPartitioned, "partitioned"},
      {core::SchedulerKind::kRtOpex, "rt-opex"}};
  bench::JsonValue rows = bench::JsonValue::array();

  bench::print_row({"mean_load", "scheduler", "static_err_us", "adapt_err_us",
                    "ratio", "static_miss", "adapt_miss"});
  for (double mean = 0.40; mean <= 1.001; mean += 0.10) {
    cfg.workload.mean_load_override = mean;
    const auto work = core::make_workload(cfg);
    for (auto& tot : totals) {
      cfg.scheduler = tot.kind;
      cfg.global.num_cores = 8;

      cfg.adaptive.enabled = false;
      const auto st = core::run_scheduler(cfg, work);
      cfg.adaptive.enabled = true;
      const auto ad = core::run_scheduler(cfg, work);
      cfg.adaptive.enabled = false;

      tot.err_used_sum += ad.metrics.decode_est_used_abs_err_us;
      tot.err_static_sum += ad.metrics.decode_est_static_abs_err_us;
      tot.samples += ad.metrics.decode_est_samples;
      tot.miss_static += st.metrics.deadline_misses;
      tot.miss_adaptive += ad.metrics.deadline_misses;
      tot.subframes += st.metrics.total_subframes;

      const double se = ad.metrics.mean_est_err_static_us();
      const double ae = ad.metrics.mean_est_err_used_us();
      bench::print_row({bench::fmt(mean), tot.label, bench::fmt(se, 1),
                        bench::fmt(ae, 1),
                        bench::fmt(ae > 0.0 ? se / ae : 0.0, 1),
                        std::to_string(st.metrics.deadline_misses),
                        std::to_string(ad.metrics.deadline_misses)});
      rows.push(bench::JsonValue::object()
                    .set("mean_load", mean)
                    .set("scheduler", tot.label)
                    .set("est_err_static_us", se)
                    .set("est_err_adaptive_us", ae)
                    .set("samples", static_cast<double>(
                                        ad.metrics.decode_est_samples))
                    .set("miss_rate_static", st.metrics.miss_rate())
                    .set("miss_rate_adaptive", ad.metrics.miss_rate()));
    }
  }

  bench::JsonValue summary = bench::JsonValue::object();
  double best_ratio = 0.0;
  std::printf("\nsweep totals (paired |decode estimate - executed| error):\n");
  for (const auto& tot : totals) {
    const double se = tot.samples ? tot.err_static_sum / tot.samples : 0.0;
    const double ae = tot.samples ? tot.err_used_sum / tot.samples : 0.0;
    const double ratio = ae > 0.0 ? se / ae : 0.0;
    std::printf("  %-12s static %.1f us -> adaptive %.1f us  (%.1fx better); "
                "misses %zu -> %zu\n",
                tot.label.c_str(), se, ae, ratio, tot.miss_static,
                tot.miss_adaptive);
    best_ratio = std::max(best_ratio, ratio);
    summary.set(tot.label,
                bench::JsonValue::object()
                    .set("est_err_static_us", se)
                    .set("est_err_adaptive_us", ae)
                    .set("error_ratio", ratio)
                    .set("misses_static", static_cast<double>(tot.miss_static))
                    .set("misses_adaptive",
                         static_cast<double>(tot.miss_adaptive))
                    .set("subframes", static_cast<double>(tot.subframes)));
  }
  bool gate_ok = best_ratio >= gate;

  // ---- Part B: what-if replay over a captured faulted run ---------------
  core::ExperimentConfig rcap = cfg;
  rcap.workload.mean_load_override = -1.0;
  rcap.workload.subframes_per_bs = std::min<std::size_t>(subframes, 3000);
  rcap.workload.seed = 11;
  rcap.workload.fronthaul_faults.loss_prob = 0.02;
  rcap.workload.fronthaul_faults.late_prob = 0.02;
  rcap.degrade.enabled = true;
  rcap.rtt_half = microseconds(650);
  rcap.scheduler = core::SchedulerKind::kPartitioned;

  const auto cap_work = core::make_workload(rcap);
  obs::Tracer tracer(24, 1 << 15, 4 << 20);
  analysis::capture_workload(tracer, cap_work);
  rcap.tracer = &tracer;
  core::run_scheduler(rcap, cap_work);
  const obs::TraceStore captured = tracer.take();

  analysis::ReplayConfig rcfg;
  rcfg.policy = analysis::ReplayConfig::Policy::kPartitioned;
  rcfg.partitioned.rtt_half = rcap.rtt_half;
  rcfg.partitioned.degrade = rcap.degrade;
  rcfg.rtopex.rtt_half = rcap.rtt_half;
  rcfg.rtopex.degrade = rcap.degrade;
  rcfg.analyzer.nominal_transport = rcap.rtt_half;

  const analysis::AnalysisReport original =
      analysis::analyze(captured, rcfg.analyzer);
  const analysis::ReplayResult same = analysis::replay(captured, rcfg);
  const analysis::ReportDelta identity =
      analysis::diff_reports(original, same.report);

  rcfg.policy = analysis::ReplayConfig::Policy::kRtOpex;
  const analysis::ReplayResult counter = analysis::replay(captured, rcfg);
  const analysis::ReportDelta what_if =
      analysis::diff_reports(same.report, counter.report);

  std::printf("\nwhat-if replay (faulted partitioned capture, %zu subframes):\n"
              "  self-replay identity: %s\n"
              "  counterfactual rt-opex: misses %+lld, degraded %+lld\n",
              cap_work.size(), identity.empty() ? "EXACT" : "BROKEN",
              what_if.misses, what_if.degraded);
  if (!identity.empty()) {
    std::printf("  identity diff: %s\n",
                analysis::delta_json(identity).c_str());
    gate_ok = false;
  }

  const std::string json_dir = out_dir.empty() ? "." : out_dir;
  bench::JsonValue root = bench::JsonValue::object();
  root.set("bench", "whatif_adaptive")
      .set("config",
           bench::JsonValue::object()
               .set("basestations",
                    static_cast<double>(cfg.workload.num_basestations))
               .set("subframes_per_bs", static_cast<double>(subframes))
               .set("seed", static_cast<double>(cfg.workload.seed))
               .set("rtt_half_us", to_us(cfg.rtt_half))
               .set("gate_ratio", gate))
      .set("rows", std::move(rows))
      .set("summary", std::move(summary))
      .set("replay",
           bench::JsonValue::object()
               .set("identity", bench::JsonValue::boolean(identity.empty()))
               .set("identity_diff", analysis::delta_json(identity))
               .set("counterfactual", analysis::delta_json(what_if))
               .set("original_misses",
                    static_cast<double>(original.misses))
               .set("rtopex_misses",
                    static_cast<double>(counter.report.misses)))
      .set("best_error_ratio", best_ratio)
      .set("gate_ok", bench::JsonValue::boolean(gate_ok));
  bench::write_bench_json(json_dir + "/BENCH_whatif.json", root);
  std::printf("\nwrote %s/BENCH_whatif.json\n", json_dir.c_str());

  if (!gate_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: best adaptive error ratio %.1fx < %.1fx, or "
                 "identity broken\n",
                 best_ratio, gate);
    return 2;
  }
  return 0;
}
