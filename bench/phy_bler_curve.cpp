// PHY substrate validation: block-error rate of the real uplink chain vs
// SNR, per MCS band. Not a paper figure, but the evidence that the decode
// substrate behind every experiment behaves like a real LTE receiver:
// waterfall BLER curves whose thresholds shift right with MCS, with the
// mean turbo iteration count rising as the margin shrinks.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/channel.hpp"
#include "phy/uplink_rx.hpp"
#include "common/rng.hpp"

using namespace rtopex;

int main() {
  bench::print_banner("PHY validation", "BLER and iterations vs SNR");

  constexpr int kBlocks = 12;
  phy::UplinkConfig cfg;
  cfg.bandwidth = phy::Bandwidth::kMHz5;  // keep the sweep quick
  cfg.num_antennas = 2;
  const phy::UplinkTransmitter tx(cfg);
  const phy::UplinkRxProcessor rx(cfg);
  Rng rng(99);

  bench::print_row({"mcs", "snr_db", "bler", "mean_L"});
  for (const unsigned mcs : {5u, 16u, 27u}) {
    for (double snr = -2.0; snr <= 26.01; snr += 4.0) {
      int errors = 0;
      double iters = 0.0;
      for (int b = 0; b < kBlocks; ++b) {
        const auto sf = tx.transmit(mcs, b, rng.next());
        channel::ChannelConfig ch;
        ch.snr_db = snr;
        ch.num_rx_antennas = cfg.num_antennas;
        const auto samples =
            channel::pass_through_channel(sf.samples, ch, rng.next());
        const auto res = rx.process(samples, mcs, sf.subframe_index);
        if (!res.crc_ok || res.payload != sf.payload) ++errors;
        iters += res.mean_iterations;
      }
      bench::print_row({std::to_string(mcs), bench::fmt(snr, 0),
                        bench::fmt(static_cast<double>(errors) / kBlocks),
                        bench::fmt(iters / kBlocks)});
    }
  }
  std::printf("\nexpected: BLER waterfalls from 1.0 to 0.0 with the threshold\n"
              "shifting right as MCS grows; mean L rises near the threshold\n"
              "(the paper's Fig. 3(b) mechanism).\n");
  return 0;
}
