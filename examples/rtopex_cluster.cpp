// Cluster-scale resilience demo: shard basestations across simulated
// compute nodes, kill one mid-run, and watch the control plane detect the
// death, re-home the orphaned basestations onto survivors, and keep the
// cluster-wide conservation law exact.
//
//   $ ./rtopex_cluster [partitioned|global|rtopex] [options]
//
// Topology options:
//   --nodes M            compute nodes (default 8)
//   --bs N               basestations across the cluster (default 32)
//   --subframes N        subframes per basestation (default 2000)
//   --load F             mean offered load per basestation (default 0.35)
//   --placement P        static-hash | load-aware | headroom-aware
//                        (default static-hash)
//
// Failure options:
//   --kill-node N        fail-stop node N mid-run (repeatable)
//   --at-ms T            failure instant in ms (default: half the run)
//   --detect-ms T        detection timeout in ms (default 30)
//
// Overload options:
//   --shed F             enable ingress admission control at threshold F
//                        of surviving capacity (F in (0, 1])
//   --rebalance          enable EWMA-driven hotspot rebalancing
//
// Observability options:
//   --trace FILE         write the merged cluster trace as Chrome JSON
//                        (one Perfetto process per node)
//   --trace-csv FILE     also dump the raw merged events as CSV
//   --analyze            run the deadline-miss postmortem over the merged
//                        trace (per-cause breakdown incl. the cluster
//                        causes node_failure_rehoming / cluster_shed;
//                        with --health, also the alert windows)
//
// Health options:
//   --health             run the live SLO/burn-rate health engine over the
//                        run; prints the per-node health table and the
//                        alert log
//   --watch              also print the cluster health timeline (one line
//                        per sampled evaluation; implies --health)
//   --prom FILE          write the federated fleet Prometheus snapshot
//                        ("-" = stdout; implies --health)
//   --alert-log FILE     write the alert log CSV (implies --health)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/health/health.hpp"

int main(int argc, char** argv) {
  using namespace rtopex;

  core::ExperimentConfig node;
  node.scheduler = core::SchedulerKind::kRtOpex;
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 8;
  unsigned num_bs = 32;
  std::size_t subframes = 2000;
  double load = 0.35;
  double kill_at_ms = -1.0;
  double detect_ms = 30.0;
  std::vector<unsigned> kill_nodes;
  bool analyze = false;
  bool health = false;
  bool watch = false;
  std::string trace_path, trace_csv_path, prom_path, alert_log_path;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "partitioned") == 0) {
      node.scheduler = core::SchedulerKind::kPartitioned;
    } else if (std::strcmp(argv[i], "global") == 0) {
      node.scheduler = core::SchedulerKind::kGlobal;
    } else if (std::strcmp(argv[i], "rtopex") == 0) {
      node.scheduler = core::SchedulerKind::kRtOpex;
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      cfg.num_nodes = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--bs") == 0 && i + 1 < argc) {
      num_bs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--subframes") == 0 && i + 1 < argc) {
      subframes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      load = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--placement") == 0 && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "static-hash") {
        cfg.placement = cluster::PlacementPolicy::kStaticHash;
      } else if (p == "load-aware") {
        cfg.placement = cluster::PlacementPolicy::kLoadAware;
      } else if (p == "headroom-aware") {
        cfg.placement = cluster::PlacementPolicy::kHeadroomAware;
      } else {
        std::fprintf(stderr, "unknown placement policy: %s\n", p.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--kill-node") == 0 && i + 1 < argc) {
      kill_nodes.push_back(static_cast<unsigned>(std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--at-ms") == 0 && i + 1 < argc) {
      kill_at_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--detect-ms") == 0 && i + 1 < argc) {
      detect_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--shed") == 0 && i + 1 < argc) {
      cfg.shed_enabled = true;
      cfg.shed_threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rebalance") == 0) {
      cfg.rebalance_enabled = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-csv") == 0 && i + 1 < argc) {
      trace_csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze = true;
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health = true;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--alert-log") == 0 && i + 1 < argc) {
      alert_log_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  node.workload.num_basestations = num_bs;
  node.workload.subframes_per_bs = subframes;
  node.workload.mean_load_override = load;
  cfg.detection_timeout = microseconds_f(detect_ms * 1000.0);
  if (kill_at_ms < 0.0)
    kill_at_ms = static_cast<double>(subframes) / 2.0;  // 1 ms per subframe
  for (const unsigned n : kill_nodes)
    cfg.failures.push_back({n, microseconds_f(kill_at_ms * 1000.0)});
  cfg.trace.enabled = analyze || !trace_path.empty() || !trace_csv_path.empty();
  // Size the per-node bounded stores to the run so the postmortem sees every
  // event (~34 events per subframe on a busy RT-OPEX node; 64 is headroom).
  cfg.trace.max_stored_events = num_bs * subframes * 64;
  health = health || watch || !prom_path.empty() || !alert_log_path.empty();
  cfg.health.enabled = health;
  cfg.health.keep_history = watch;

  cluster::ClusterSim sim(node, cfg);
  const cluster::ClusterResult result = sim.run();
  const cluster::ClusterMetrics& m = result.metrics;

  std::printf("cluster: %u basestations on %u nodes (%s), scheduler %s\n",
              num_bs, cfg.num_nodes, cluster::to_string(cfg.placement),
              result.scheduler_name.c_str());
  std::printf("%-5s %-10s %9s %9s %9s %9s  %s\n", "node", "bs res/host",
              "subframes", "misses", "miss rate", "lost", "state");
  for (const cluster::NodeReport& nr : m.nodes) {
    char bs_col[16];
    std::snprintf(bs_col, sizeof bs_col, "%u/%u", nr.resident_basestations,
                  nr.hosted_basestations);
    char state[64] = "ok";
    if (nr.failed_at >= 0)
      std::snprintf(state, sizeof state, "killed @%.0fms detected @%.0fms",
                    to_ms(nr.failed_at), to_ms(nr.detected_at));
    std::printf("%-5u %-10s %9zu %9zu %9.2e %9zu  %s\n", nr.node, bs_col,
                nr.metrics.total_subframes, nr.metrics.deadline_misses,
                nr.metrics.miss_rate(), nr.metrics.resilience.lost_subframes,
                state);
  }

  std::printf("\ncluster rollup:\n");
  std::printf("  offered %zu = dispatched %zu + shed %zu + failure_lost %zu\n",
              m.offered, m.dispatched, m.shed, m.failure_lost);
  std::printf("  processed %zu, dropped %zu, terminated %zu, late %zu, "
              "lost %zu\n",
              m.processed, m.dropped, m.terminated, m.late, m.lost);
  std::printf("  miss rate %.3e  (misses %zu)\n", m.miss_rate(),
              m.deadline_misses);
  std::printf("  node failovers %zu, re-homed basestations %zu "
              "(%zu subframes), rebalance moves %zu\n",
              m.node_failovers, m.rehomed_basestations, m.rehomed_subframes,
              m.rebalance_moves);
  if (m.recovery_ms.count() > 0)
    std::printf("  recovery time: p50 %.1f ms, p99 %.1f ms, max %.1f ms "
                "(%llu failures)\n",
                m.recovery_ms.p50(), m.recovery_ms.p99(), m.recovery_ms.max(),
                static_cast<unsigned long long>(m.recovery_ms.count()));
  std::printf("  conservation law: %s\n",
              m.conserved() ? "exact" : "VIOLATED");

  if (health) {
    std::printf("\nfleet health (slow-burn window at end of run):\n");
    std::printf("%-8s %6s %10s %12s %12s %7s %s\n", "scope", "util",
                "miss rate", "slack p50", "slack p99", "score", "alerts");
    auto health_row = [](const char* name, const obs::health::ScopeHealth& h) {
      char alerts_col[32] = "-";
      if (h.active_warn || h.active_page)
        std::snprintf(alerts_col, sizeof alerts_col, "%uW/%uP", h.active_warn,
                      h.active_page);
      std::printf("%-8s %5.0f%% %10.2e %9.0f us %9.0f us %7.0f %s\n", name,
                  h.utilization * 100.0, h.miss_rate, h.slack_p50_us,
                  h.slack_p99_us, h.health_score, alerts_col);
    };
    health_row("cluster", result.health.cluster);
    for (const obs::health::ScopeHealth& h : result.health.nodes) {
      char name[16];
      std::snprintf(name, sizeof name, "node %u", h.id);
      health_row(name, h);
    }
    if (result.alerts.empty()) {
      std::printf("alert log: empty (no SLO burn, no anomalies)\n");
    } else {
      std::printf("alert log (%zu):\n", result.alerts.size());
      for (const obs::health::Alert& a : result.alerts)
        std::printf("  %s\n", obs::health::describe(a).c_str());
    }
  }

  if (watch && !result.health_history.empty()) {
    // Cluster-scope timeline, sampled down to ~40 lines so long runs stay
    // readable; every evaluated boundary is in result.health_history.
    const std::size_t step =
        std::max<std::size_t>(1, result.health_history.size() / 40);
    std::printf("\ncluster health timeline (every %zu%s eval):\n", step,
                step == 1 ? "st" : "th");
    for (std::size_t i = 0; i < result.health_history.size(); i += step) {
      const obs::health::HealthSnapshot& s = result.health_history[i];
      const obs::health::ScopeHealth& c = s.cluster;
      std::printf("  t=%7.1fms score %3.0f burn %5.2f miss %.2e"
                  " offered %6llu %uW/%uP\n",
                  to_ms(s.at), c.health_score, c.burn_rate, c.miss_rate,
                  static_cast<unsigned long long>(c.offered), c.active_warn,
                  c.active_page);
    }
  }

  if (!prom_path.empty()) {
    obs::MetricsRegistry reg;
    cluster::fill_federated_registry(result, reg);
    if (prom_path == "-")
      std::printf("\n%s", reg.render().c_str());
    else
      reg.write(prom_path);
  }
  if (!alert_log_path.empty())
    obs::health::write_alert_log_csv(alert_log_path, result.alerts);

  if (!trace_path.empty()) {
    // One Perfetto process per node; the cluster control and health tracks
    // fall into the trailing process named by process_name.
    obs::ChromeTraceOptions topts;
    topts.process_name = "cluster control";
    for (const cluster::ClusterResult::NodeTracks& nt : result.node_tracks)
      topts.processes.push_back(
          {"node " + std::to_string(nt.node), nt.first_track, nt.num_tracks});
    obs::write_chrome_trace(trace_path, result.trace, topts);
  }
  if (!trace_csv_path.empty())
    obs::write_trace_csv(trace_csv_path, result.trace);

  if (analyze) {
    const obs::analysis::AnalysisReport report =
        obs::analysis::analyze(result.trace, {});
    std::printf("\npostmortem: %s\n",
                obs::analysis::summary_json(report).c_str());
    for (unsigned c = 1; c < obs::analysis::kNumMissCauses; ++c)
      if (report.cause_counts[c] > 0)
        std::printf("  %-24s %llu\n",
                    obs::analysis::to_string(
                        static_cast<obs::analysis::MissCause>(c)),
                    static_cast<unsigned long long>(report.cause_counts[c]));
  }
  return m.conserved() ? 0 : 1;
}
