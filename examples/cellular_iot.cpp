// Mixed-standard deployment (paper §5 D): two busy 10 MHz macro cells share
// the node with two lightly loaded 5 MHz cellular-IoT cells. Under
// partitioned scheduling the IoT cells' cores idle most of the time while
// the macro cells drop their heavy subframes next door; RT-OPEX turns the
// IoT cores into migration capacity — "for a heterogeneous set of
// basestations and standards, RT-OPEX can easily leverage idle cycles".
//
//   $ ./cellular_iot
#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace rtopex;

  core::ExperimentConfig config;
  config.workload.num_basestations = 4;
  config.workload.subframes_per_bs = 20000;
  config.rtt_half = microseconds(550);
  // BS0/1: busy 10 MHz macro cells. BS2/3: 5 MHz IoT cells (narrowband,
  // light duty cycle — the preset's lighter operating points).
  config.workload.per_bs_bandwidth = {
      phy::Bandwidth::kMHz10, phy::Bandwidth::kMHz10, phy::Bandwidth::kMHz5,
      phy::Bandwidth::kMHz5};

  const auto workload = core::make_workload(config);
  std::printf("2x 10 MHz macro + 2x 5 MHz IoT cells, RTT/2 = 550 us\n\n");

  std::printf("%-14s %10s   per-BS miss rates (macro, macro, iot, iot)\n",
              "scheduler", "overall");
  for (const auto kind : {core::SchedulerKind::kPartitioned,
                          core::SchedulerKind::kRtOpex}) {
    config.scheduler = kind;
    const auto r = core::run_scheduler(config, workload);
    std::printf("%-14s %10.2e   ", r.scheduler_name.c_str(),
                r.metrics.miss_rate());
    for (const auto& bs : r.metrics.per_bs)
      std::printf("%.2e  ", bs.subframes == 0
                                ? 0.0
                                : static_cast<double>(bs.misses) /
                                      static_cast<double>(bs.subframes));
    if (kind == core::SchedulerKind::kRtOpex)
      std::printf("  [decode migration: %.0f%%]",
                  100.0 * r.metrics.decode_migration_fraction());
    std::printf("\n");
  }

  std::printf("\nthe IoT cells finish their narrowband subframes quickly and\n"
              "sit idle; RT-OPEX schedules the macro cells' turbo code blocks\n"
              "into exactly those gaps.\n");
  return 0;
}
