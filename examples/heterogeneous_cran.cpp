// Heterogeneous deployment (paper §5 D): basestations at different
// fronthaul distances share one compute node. Every subframe's deadline is
// still radio-time + 2 ms, so distant basestations simply have less
// processing slack — and RT-OPEX leverages the near cells' idle cycles to
// rescue the far cells, with no prior knowledge of the deployment.
//
//   $ ./heterogeneous_cran
#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace rtopex;

  core::ExperimentConfig config;
  config.workload.num_basestations = 4;
  config.workload.subframes_per_bs = 20000;
  config.rtt_half = microseconds(400);  // budget for the *near* cells
  // Equal traffic everywhere so that distance, not load, drives the
  // difference between cells.
  config.workload.mean_load_override = 0.5;
  // Fronthaul spread: BS0/1 near (+0), BS2 at +150 us, BS3 at +300 us
  // (~60 km more fiber) — BS3's effective budget is 1.3 ms.
  config.workload.per_bs_extra_delay = {0, 0, microseconds(150),
                                        microseconds(300)};

  const auto workload = core::make_workload(config);
  std::printf("4 basestations, fronthaul one-way delays: 400/400/550/700 us\n"
              "deadline is radio-time + 2 ms for everyone, so the far cells\n"
              "have up to 600 us less processing slack.\n\n");

  std::printf("%-22s %10s   per-BS miss rates\n", "scheduler", "overall");
  const auto report = [&](const char* name, const core::ExperimentResult& r) {
    std::printf("%-22s %10.2e   ", name, r.metrics.miss_rate());
    for (const auto& bs : r.metrics.per_bs)
      std::printf("%.2e  ", bs.subframes == 0
                                ? 0.0
                                : static_cast<double>(bs.misses) /
                                      static_cast<double>(bs.subframes));
    std::printf("\n");
  };

  config.scheduler = core::SchedulerKind::kPartitioned;
  report("partitioned", core::run_scheduler(config, workload));

  config.scheduler = core::SchedulerKind::kGlobal;
  // EDF and FIFO coincide here: subframes of one tick share a deadline, so
  // ordering by deadline degenerates to arrival order (cf. paper §3.1.2).
  report("global (8 cores)", core::run_scheduler(config, workload));

  config.scheduler = core::SchedulerKind::kRtOpex;
  report("rt-opex", core::run_scheduler(config, workload));

  std::printf("\nunder partitioned scheduling the far cells (right columns)\n"
              "miss far more than the near ones; RT-OPEX migrates their\n"
              "decode work into the near cells' gaps — the paper's\n"
              "resource-pooling-at-millisecond-granularity argument.\n");
  return 0;
}
