// ASCII renderings of the paper's schedule examples:
//   Fig. 9  — a partitioned schedule on two cores (with a deadline miss),
//   Fig. 10 — a global schedule of two basestations on two cores,
//   Fig. 11 — RT-OPEX migrating decode subtasks into another core's gap.
//
// The workloads are hand-built with the calibrated task-cost model so the
// schedules are easy to read: light subframes (MCS 10) interleaved with
// heavy ones (MCS 21, four turbo iterations) whose worst case exceeds the
// processing budget — partitioned scheduling must drop those, RT-OPEX
// admits them by migrating decode subtasks into the other core's gap.
//
//   --out DIR    also write each schedule as Chrome trace-event JSON
//                (fig09_trace.json / fig10_trace.json / fig11_trace.json,
//                loadable in chrome://tracing or ui.perfetto.dev).
//   --analyze    run the deadline-miss postmortem over each schedule's
//                trace and print the attributed cause breakdown.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "model/task_cost_model.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/tracer.hpp"
#include "sched/global.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"

using namespace rtopex;

namespace {

constexpr int kColsPerMs = 12;  // timeline resolution
constexpr Duration kRttHalf = microseconds(500);

sim::SubframeWork make_subframe(const model::TaskCostModel& cost, unsigned bs,
                                std::uint32_t index, unsigned mcs,
                                unsigned iterations) {
  sim::SubframeWork w;
  w.bs = bs;
  w.index = index;
  w.radio_time = static_cast<TimePoint>(index) * kSubframePeriod;
  w.arrival = w.radio_time + kRttHalf;
  w.deadline = w.radio_time + kEndToEndBudget;
  w.mcs = mcs;
  w.iterations = iterations;
  w.costs = cost.costs(mcs, iterations, 0);
  w.wcet = cost.costs(mcs, 4, 0);
  w.decode_optimistic = cost.costs(mcs, 1, 0).decode;
  return w;
}

std::vector<sim::SubframeWork> mixed_workload(
    const model::TaskCostModel& cost, unsigned num_bs) {
  // Heavy (MCS 21, L = 4) subframes at indices 1 and 5, light elsewhere.
  std::vector<sim::SubframeWork> work;
  for (std::uint32_t j = 0; j < 8; ++j) {
    for (unsigned bs = 0; bs < num_bs; ++bs) {
      const bool heavy = j == 1 || j == 5;
      work.push_back(make_subframe(cost, bs, j, heavy ? 21 : 10,
                                   heavy ? 4 : 1));
    }
  }
  return work;
}

void render(const char* title, const sim::SchedulerMetrics& metrics,
            unsigned num_cores, TimePoint horizon) {
  std::printf("\n%s\n", title);
  const auto cols = static_cast<std::size_t>(to_ms(horizon) * kColsPerMs);
  std::vector<std::string> rows(num_cores, std::string(cols, '.'));
  for (const auto& e : metrics.timeline) {
    if (e.core >= num_cores) continue;
    const auto c0 = static_cast<std::size_t>(to_ms(e.start) * kColsPerMs);
    const auto c1 = static_cast<std::size_t>(to_ms(e.end) * kColsPerMs);
    const char glyph = e.missed ? 'X' : static_cast<char>('A' + e.bs);
    for (std::size_t c = c0; c <= c1 && c < cols; ++c)
      rows[e.core][c] = glyph;
  }
  std::printf("         ");
  for (std::size_t ms = 0; ms * kColsPerMs < cols; ++ms)
    std::printf("%-*zu", kColsPerMs, ms);
  std::printf("ms\n");
  for (unsigned c = 0; c < num_cores; ++c)
    std::printf("core %-2u  %s\n", c, rows[c].c_str());
  std::printf("legend: A/B = basestation processing, X = deadline-missed "
              "subframe, . = idle\n");
}

/// Per-miss attribution from the timeline: which stage ran out of budget,
/// and whether the subframe had subtasks hosted on another core.
void print_missed(const sim::SchedulerMetrics& metrics) {
  for (const auto& e : metrics.timeline) {
    if (!e.missed) continue;
    std::printf("  miss: bs %c subframe %u on core %u — stage %s",
                static_cast<char>('A' + e.bs), e.index, e.core,
                obs::to_string(e.missed_stage));
    if (e.host_core >= 0)
      std::printf(" (subtasks hosted on core %d)", e.host_core);
    std::printf("\n");
  }
}

/// Postmortem over one schedule's trace: the one-line summary plus the
/// per-cause miss counts, printed under the figure it explains.
void maybe_analyze(bool analyze, const obs::Tracer& tracer) {
  if (!analyze) return;
  namespace analysis = obs::analysis;
  analysis::AnalyzerOptions opts;
  opts.nominal_transport = kRttHalf;
  const analysis::AnalysisReport report =
      analysis::analyze(tracer.store(), opts);
  std::printf("  analysis: %s\n", analysis::summary_json(report).c_str());
  for (unsigned c = 1; c < analysis::kNumMissCauses; ++c)
    if (report.cause_counts[c])
      std::printf("    %-22s %llu\n",
                  analysis::to_string(static_cast<analysis::MissCause>(c)),
                  static_cast<unsigned long long>(report.cause_counts[c]));
}

void maybe_write_trace(const std::string& out_dir, const char* file,
                       obs::Tracer& tracer, unsigned num_cores,
                       const char* name) {
  if (out_dir.empty()) return;
  obs::ChromeTraceOptions opts;
  opts.process_name = name;
  opts.num_cores = num_cores;
  const std::string path = out_dir + "/" + file;
  obs::write_chrome_trace(path, tracer.take(), opts);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  bool analyze = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR] [--analyze]\n", argv[0]);
      return 1;
    }
  }
  const bool tracing = !out_dir.empty() || analyze;

  const model::TaskCostModel cost(model::paper_gpp_model(), 2, 50);
  const TimePoint horizon = milliseconds(8);

  // --- Fig. 9: partitioned, one basestation on two cores ---
  {
    const auto work = mixed_workload(cost, 1);
    obs::Tracer tracer(2);
    sched::PartitionedConfig pc;
    pc.rtt_half = kRttHalf;
    pc.record_timeline = true;
    if (tracing) pc.tracer = &tracer;
    sched::PartitionedScheduler sched(1, pc);
    const auto m = sched.run(work);
    render("Fig. 9 style — partitioned schedule, BS A on 2 cores "
           "(subframe j -> core j mod 2)",
           m, sched.num_cores(), horizon);
    std::printf("misses: %zu/%zu — the heavy subframes (t = 1, 5 ms) exceed "
                "the budget and are dropped,\neven though the other core "
                "sits idle right next to them.\n",
                m.deadline_misses, m.total_subframes);
    print_missed(m);
    maybe_analyze(analyze, tracer);
    maybe_write_trace(out_dir, "fig09_trace.json", tracer, sched.num_cores(),
                      "scheduler_timelines fig09 partitioned");
  }

  // --- Fig. 10: global, two basestations on two cores ---
  {
    const auto work = mixed_workload(cost, 2);
    obs::Tracer tracer(2);
    sched::GlobalConfig gc;
    gc.num_cores = 2;
    gc.record_timeline = true;
    if (tracing) gc.tracer = &tracer;
    sched::GlobalScheduler sched(2, gc);
    const auto m = sched.run(work);
    render("Fig. 10 style — global schedule, BSs A+B sharing 2 cores "
           "(queueing delays late subframes)",
           m, 2, horizon);
    std::printf("misses: %zu/%zu — with both basestations on a shared queue, "
                "heavy subframes queue behind\neach other and push later "
                "arrivals past their deadlines.\n",
                m.deadline_misses, m.total_subframes);
    print_missed(m);
    maybe_analyze(analyze, tracer);
    maybe_write_trace(out_dir, "fig10_trace.json", tracer, 2,
                      "scheduler_timelines fig10 global");
  }

  // --- Fig. 11: RT-OPEX, one basestation on two cores ---
  {
    const auto work = mixed_workload(cost, 1);
    obs::Tracer tracer(2);
    sched::RtOpexConfig rc;
    rc.rtt_half = kRttHalf;
    rc.record_timeline = true;
    if (tracing) rc.tracer = &tracer;
    sched::RtOpexScheduler sched(1, rc);
    const auto m = sched.run(work);
    render("Fig. 11 style — RT-OPEX on the same workload as Fig. 9 "
           "(decode subtasks migrate into the idle core's gap)",
           m, sched.num_cores(), horizon);
    std::printf("misses: %zu/%zu, subtasks migrated: %zu — the heavy decodes "
                "are split across both cores\nat runtime, so the same "
                "hardware now meets every deadline.\n",
                m.deadline_misses, m.total_subframes,
                m.fft_subtasks_migrated + m.decode_subtasks_migrated);
    print_missed(m);
    maybe_analyze(analyze, tracer);
    maybe_write_trace(out_dir, "fig11_trace.json", tracer, sched.num_cores(),
                      "scheduler_timelines fig11 rt-opex");
  }
  return 0;
}
