// PHY walkthrough: encode one LTE-like uplink subframe, push it through an
// AWGN channel, and decode it with the task/subtask decomposition the
// RT-OPEX scheduler migrates.
//
//   $ ./uplink_decode [mcs] [snr_db]
#include <cstdio>
#include <cstdlib>

#include "channel/channel.hpp"
#include "common/thread_utils.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"

int main(int argc, char** argv) {
  using namespace rtopex;

  const unsigned mcs = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 27;
  const double snr_db = argc > 2 ? std::atof(argv[2]) : 30.0;
  if (mcs > phy::kMaxMcs) {
    std::fprintf(stderr, "mcs must be 0..27\n");
    return 1;
  }

  phy::UplinkConfig cfg;  // 10 MHz, 2 antennas, Lm = 4
  std::printf("uplink subframe: MCS %u, %u PRB, %u antennas, SNR %.0f dB\n",
              mcs, cfg.num_prb(), cfg.num_antennas, snr_db);
  std::printf("transport block: %u bits (D = %.2f bits/RE), %u code block(s)\n",
              phy::transport_block_size(mcs, cfg.num_prb()),
              phy::subcarrier_load(mcs, cfg.num_prb()),
              phy::num_code_blocks(mcs, cfg.num_prb()));

  // Transmit.
  const phy::UplinkTransmitter tx(cfg);
  const phy::TxSubframe sf = tx.transmit(mcs, /*subframe_index=*/0,
                                         /*payload_seed=*/42);
  std::printf("transmitted %zu time-domain samples\n", sf.samples.size());

  // Channel.
  channel::ChannelConfig ch;
  ch.snr_db = snr_db;
  ch.num_rx_antennas = cfg.num_antennas;
  const auto rx_samples = channel::pass_through_channel(sf.samples, ch, 7);

  // Receive, stage by stage (what a scheduler drives).
  const phy::UplinkRxProcessor rx(cfg);
  auto job = rx.make_job();
  rx.begin(job, rx_samples, mcs, sf.subframe_index);

  const std::int64_t t0 = monotonic_ns();
  for (std::size_t i = 0; i < rx.fft_subtask_count(); ++i)
    rx.run_fft_subtask(job, i);
  const std::int64_t t1 = monotonic_ns();
  rx.demod_prepare(job);
  for (std::size_t i = 0; i < rx.demod_subtask_count(); ++i)
    rx.run_demod_subtask(job, i);
  const std::int64_t t2 = monotonic_ns();
  rx.decode_prepare(job);
  for (std::size_t i = 0; i < rx.decode_subtask_count(job); ++i)
    rx.run_decode_subtask(job, i);
  const phy::UplinkRxResult result = rx.finalize(job);
  const std::int64_t t3 = monotonic_ns();

  std::printf("\nstage times on this host (serial):\n");
  std::printf("  taskFFT    %6.0f us  (%zu subtasks: 14 symbols x %u antennas)\n",
              (t1 - t0) / 1e3, rx.fft_subtask_count(), cfg.num_antennas);
  std::printf("  taskDemod  %6.0f us  (%zu subtasks)\n", (t2 - t1) / 1e3,
              rx.demod_subtask_count());
  std::printf("  taskDecode %6.0f us  (%zu code blocks, %u turbo iteration(s))\n",
              (t3 - t2) / 1e3, rx.decode_subtask_count(job),
              result.iterations);
  std::printf("\n%s after %u iteration(s); payload %s\n",
              result.crc_ok ? "ACK (CRC pass)" : "NACK (CRC fail)",
              result.iterations,
              result.crc_ok && result.payload == sf.payload
                  ? "matches the transmitted bits"
                  : (result.crc_ok ? "MISMATCH (should not happen)"
                                   : "not recovered"));
  return result.crc_ok ? 0 : 2;
}
