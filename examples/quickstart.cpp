// Quickstart: compare the three C-RAN node schedulers on the paper's
// standard workload with a few lines of code.
//
//   $ ./quickstart
//
// Builds a 4-basestation, 30000-subframe workload (trace-driven MCS, fixed
// 500 us one-way transport) and reports each scheduler's deadline-miss rate.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/provisioning.hpp"

int main() {
  using namespace rtopex;

  core::ExperimentConfig config;
  config.workload.num_basestations = 4;
  config.workload.subframes_per_bs = 30000;
  config.rtt_half = microseconds(500);

  // Generate the workload once so all schedulers see identical subframes.
  const auto workload = core::make_workload(config);
  std::printf("workload: %zu subframes, 4 basestations, RTT/2 = 500 us\n\n",
              workload.size());
  std::printf("%-14s %8s %12s %12s %14s\n", "scheduler", "cores", "misses",
              "miss rate", "migrations");

  for (const auto kind :
       {core::SchedulerKind::kPartitioned, core::SchedulerKind::kGlobal,
        core::SchedulerKind::kRtOpex}) {
    config.scheduler = kind;
    const auto result = core::run_scheduler(config, workload);
    const auto& m = result.metrics;
    std::printf("%-14s %8u %12zu %12.2e %14zu\n",
                result.scheduler_name.c_str(), result.num_cores,
                m.deadline_misses, m.miss_rate(),
                m.fft_subtasks_migrated + m.decode_subtasks_migrated);
  }

  std::printf("\nRT-OPEX turns the partitioned schedule's idle gaps into\n"
              "parallel decode capacity — same cores, fewer misses.\n");

  // Capacity planning (the paper's operator use case): how much one-way
  // transport delay can each scheduler absorb at a 1e-2 miss ceiling?
  core::ProvisioningQuery query;
  query.base = config;
  query.base.workload.subframes_per_bs = 5000;  // quick search probes
  std::printf("\nmax RTT/2 at a 1e-2 miss ceiling:\n");
  for (const auto kind : {core::SchedulerKind::kPartitioned,
                          core::SchedulerKind::kRtOpex}) {
    query.base.scheduler = kind;
    const Duration budget = core::max_supported_rtt_half(query);
    std::printf("  %-12s %4.0f us\n", core::to_string(kind), to_us(budget));
  }
  return 0;
}
