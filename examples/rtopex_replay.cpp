// What-if trace replay CLI: feeds a captured trace (a CSV written with
// workload capture enabled — live_runtime --trace, or the --demo mode
// below) back through any sim scheduler in virtual time and diffs the
// postmortem reports. "Would RT-OPEX have saved these misses?"
//
//   $ ./rtopex_replay TRACE.csv [options]
//   $ ./rtopex_replay --demo [options]        (self-contained demo run)
//
//   --policy NAME        replay scheduler: partitioned | global | rt-opex
//                        (default partitioned)
//   --compare NAME       second replay under this policy; prints the
//                        counterfactual diff (compare - policy)
//   --self-check         replay twice under --policy and fail unless the
//                        two reports are identical (determinism gate)
//   --expect-identity    fail unless the replay reproduces the input
//                        trace's own per-cause miss counts (self-replay
//                        identity; requires --policy to match the config
//                        that produced the trace)
//   --demo               generate a faulted fig15-style partitioned run
//                        (capture + trace) instead of reading a file; the
//                        trace CSV round-trips through --out
//   --adaptive           enable online adaptive estimators in the replays
//   --rtt-half-us N      one-way transport budget of the replay configs
//                        (default 500; the demo uses 650)
//   --num-cores N        core count for the global policy (default 8)
//   --degrade            enable graceful degradation in the replay configs
//   --diff-json FILE     write the last diff as JSON ("-" = stdout)
//   --out DIR            artifact directory (default ".")
//
// The last stdout line is always a one-line JSON verdict, so scripts can
// `tail -n 1` it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "obs/analysis/replay.hpp"
#include "obs/chrome_trace.hpp"

namespace {

using namespace rtopex;
namespace analysis = obs::analysis;

bool parse_policy(const char* name, analysis::ReplayConfig::Policy& out) {
  if (std::strcmp(name, "partitioned") == 0) {
    out = analysis::ReplayConfig::Policy::kPartitioned;
  } else if (std::strcmp(name, "global") == 0) {
    out = analysis::ReplayConfig::Policy::kGlobal;
  } else if (std::strcmp(name, "rt-opex") == 0 ||
             std::strcmp(name, "rtopex") == 0) {
    out = analysis::ReplayConfig::Policy::kRtOpex;
  } else {
    return false;
  }
  return true;
}

/// Fig. 15-style faulted partitioned run with workload capture: the
/// self-contained producer for demos and CI smoke tests.
obs::TraceStore demo_trace(Duration rtt_half, bool degrade) {
  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 3000;
  cfg.workload.seed = 11;
  cfg.workload.fronthaul_faults.loss_prob = 0.02;
  cfg.workload.fronthaul_faults.late_prob = 0.02;
  cfg.degrade.enabled = degrade;
  cfg.rtt_half = rtt_half;
  cfg.scheduler = core::SchedulerKind::kPartitioned;

  const auto work = core::make_workload(cfg);
  obs::Tracer tracer(24, 1 << 15, 4 << 20);
  analysis::capture_workload(tracer, work);
  cfg.tracer = &tracer;
  core::run_scheduler(cfg, work);
  return tracer.take();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, out_dir = ".", diff_json_path;
  auto policy = analysis::ReplayConfig::Policy::kPartitioned;
  auto compare = analysis::ReplayConfig::Policy::kPartitioned;
  bool have_compare = false;
  bool self_check = false;
  bool expect_identity = false;
  bool demo = false;
  bool adaptive = false;
  bool degrade = false;
  Duration rtt_half = microseconds(500);
  bool rtt_set = false;
  unsigned global_cores = 8;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      if (!parse_policy(argv[++i], policy)) {
        std::fprintf(stderr, "unknown policy: %s\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      if (!parse_policy(argv[++i], compare)) {
        std::fprintf(stderr, "unknown policy: %s\n", argv[i]);
        return 1;
      }
      have_compare = true;
    } else if (std::strcmp(argv[i], "--self-check") == 0) {
      self_check = true;
    } else if (std::strcmp(argv[i], "--expect-identity") == 0) {
      expect_identity = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      adaptive = true;
    } else if (std::strcmp(argv[i], "--degrade") == 0) {
      degrade = true;
    } else if (std::strcmp(argv[i], "--rtt-half-us") == 0 && i + 1 < argc) {
      rtt_half = microseconds_f(std::atof(argv[++i]));
      rtt_set = true;
    } else if (std::strcmp(argv[i], "--num-cores") == 0 && i + 1 < argc) {
      global_cores = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--diff-json") == 0 && i + 1 < argc) {
      diff_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (argv[i][0] != '-' && trace_path.empty()) {
      trace_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s TRACE.csv | --demo [--policy NAME]\n"
                   "  [--compare NAME] [--self-check] [--expect-identity]\n"
                   "  [--adaptive] [--degrade] [--rtt-half-us N]\n"
                   "  [--num-cores N] [--diff-json FILE] [--out DIR]\n",
                   argv[0]);
      return 1;
    }
  }
  if (!demo && trace_path.empty()) {
    std::fprintf(stderr, "%s: no trace file given (or --demo)\n", argv[0]);
    return 1;
  }

  try {
    obs::TraceStore store;
    if (demo) {
      if (!rtt_set) rtt_half = microseconds(650);
      degrade = true;  // the demo producer always degrades (fig15-style)
      store = demo_trace(rtt_half, degrade);
      // Round-trip through the CSV exporter so the demo exercises exactly
      // the same path a captured file does.
      trace_path = out_dir + "/replay_demo_trace.csv";
      obs::write_trace_csv(trace_path, store);
      store = analysis::load_trace_csv(trace_path);
      std::fprintf(stderr, "demo trace written to %s\n", trace_path.c_str());
    } else {
      store = analysis::load_trace_csv(trace_path);
    }

    analysis::ReplayConfig rcfg;
    rcfg.policy = policy;
    rcfg.partitioned.rtt_half = rtt_half;
    rcfg.partitioned.degrade.enabled = degrade;
    rcfg.partitioned.adaptive.enabled = adaptive;
    rcfg.rtopex.rtt_half = rtt_half;
    rcfg.rtopex.degrade.enabled = degrade;
    rcfg.rtopex.adaptive.enabled = adaptive;
    rcfg.global.num_cores = global_cores;
    rcfg.global.degrade.enabled = degrade;
    rcfg.global.adaptive.enabled = adaptive;
    rcfg.analyzer.nominal_transport = rtt_half;

    // Same analyzer options on both sides, or attribution thresholds
    // (nominal transport) would differ and break the identity diff.
    const analysis::AnalysisReport baseline =
        analysis::analyze(store, rcfg.analyzer);
    std::printf("baseline %s\n", analysis::summary_json(baseline).c_str());

    const analysis::ReplayResult primary = analysis::replay(store, rcfg);
    std::printf("replay[%s] %s\n", analysis::to_string(policy),
                analysis::summary_json(primary.report).c_str());

    int failures = 0;
    analysis::ReportDelta last_delta;

    if (self_check) {
      const analysis::ReplayResult again = analysis::replay(store, rcfg);
      const analysis::ReportDelta d =
          analysis::diff_reports(primary.report, again.report);
      last_delta = d;
      if (!d.empty()) {
        std::fprintf(stderr, "SELF-CHECK FAILED: replay is not deterministic\n");
        std::fprintf(stderr, "%s\n", analysis::delta_json(d).c_str());
        ++failures;
      } else {
        std::fprintf(stderr, "self-check passed: replay is deterministic\n");
      }
    }

    if (expect_identity) {
      const analysis::ReportDelta d =
          analysis::diff_reports(baseline, primary.report);
      last_delta = d;
      if (!d.empty()) {
        std::fprintf(stderr,
                     "IDENTITY FAILED: replay does not reproduce the "
                     "original report\n");
        std::fprintf(stderr, "%s\n", analysis::delta_json(d).c_str());
        ++failures;
      } else {
        std::fprintf(stderr, "self-replay identity holds\n");
      }
    }

    if (have_compare) {
      analysis::ReplayConfig ccfg = rcfg;
      ccfg.policy = compare;
      const analysis::ReplayResult counter = analysis::replay(store, ccfg);
      std::printf("replay[%s] %s\n", analysis::to_string(compare),
                  analysis::summary_json(counter.report).c_str());
      last_delta = analysis::diff_reports(primary.report, counter.report);
      std::fprintf(stderr, "counterfactual (%s - %s): misses %+lld\n",
                   analysis::to_string(compare), analysis::to_string(policy),
                   last_delta.misses);
    }

    const std::string delta_text = analysis::delta_json(last_delta);
    if (!diff_json_path.empty()) {
      if (diff_json_path == "-") {
        std::printf("%s\n", delta_text.c_str());
      } else {
        std::FILE* f = std::fopen(diff_json_path.c_str(), "w");
        if (!f) throw std::runtime_error("cannot open " + diff_json_path);
        std::fprintf(f, "%s\n", delta_text.c_str());
        std::fclose(f);
      }
    }
    std::printf("%s\n", delta_text.c_str());
    return failures == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
}
