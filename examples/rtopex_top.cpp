// rtopex_top — live fleet health viewer. Renders a refreshing per-scope
// health table (utilization, miss rate, burn, slack percentiles, health
// score, active alerts) from Prometheus text snapshots written by running
// substrates:
//
//   * live_runtime --health --metrics node0.prom   (atomically refreshed
//     while the runtime runs — point rtopex_top at it from another
//     terminal for a live view)
//   * rtopex_cluster --prom fleet.prom             (federated fleet
//     snapshot; already one row per node)
//
//   $ ./rtopex_top FILE... [options]
//
//   --once           render one frame and exit (CI / scripting)
//   --frames N       render N frames then exit (0 = until interrupted)
//   --interval-ms T  refresh period (default 500)
//   --plain          never emit ANSI clear/home escapes (plays nicely
//                    with log capture; --once implies it)
//
// The parser reads the exposition format generically (# lines skipped,
// `name{labels} value` rows), so the table degrades gracefully: sources
// without rtopex_health_* series render as "no health series (run with
// --health)". A missing file renders as "waiting for <file>" and keeps
// refreshing — start rtopex_top before the run if you like.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses one exposition line ("name{k="v",...} value"); false on comments,
/// blanks and anything malformed (rtopex_top is a viewer, not a linter).
bool parse_line(const std::string& line, Sample& out) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] == '#') return false;

  const std::size_t name_begin = i;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  if (i == name_begin) return false;
  out.name = line.substr(name_begin, i - name_begin);
  out.labels.clear();

  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      const std::size_t key_begin = i;
      while (i < line.size() && line[i] != '=') ++i;
      if (i >= line.size()) return false;
      const std::string key = line.substr(key_begin, i - key_begin);
      ++i;  // '='
      if (i >= line.size() || line[i] != '"') return false;
      ++i;  // opening quote
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          ++i;
          value += line[i] == 'n' ? '\n' : line[i];
        } else {
          value += line[i];
        }
        ++i;
      }
      if (i >= line.size()) return false;
      ++i;  // closing quote
      if (i < line.size() && line[i] == ',') ++i;
      out.labels.emplace(key, value);
    }
    if (i >= line.size()) return false;
    ++i;  // '}'
  }

  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size()) return false;
  char* end = nullptr;
  out.value = std::strtod(line.c_str() + i, &end);
  return end != line.c_str() + i;
}

struct Source {
  std::string path;
  bool present = false;
  std::vector<Sample> samples;

  void reload() {
    samples.clear();
    std::ifstream in(path);
    present = in.good();
    if (!present) return;
    std::string line;
    Sample s;
    while (std::getline(in, line))
      if (parse_line(line, s)) samples.push_back(s);
  }

  /// Value of `name` whose labels include everything in `want`; NaN if the
  /// series is absent.
  double find(const std::string& name,
              const std::map<std::string, std::string>& want) const {
    for (const Sample& s : samples) {
      if (s.name != name) continue;
      bool match = true;
      for (const auto& [k, v] : want) {
        const auto it = s.labels.find(k);
        if (it == s.labels.end() || it->second != v) {
          match = false;
          break;
        }
      }
      if (match) return s.value;
    }
    return std::nan("");
  }

  /// Quantile (q in [0, 1]) from a native histogram's cumulative
  /// `name_bucket{le="..."}` series matching `want`, interpolated linearly
  /// inside the containing bucket; NaN when the histogram is absent or
  /// empty. Prometheus-style histogram_quantile over the text exposition.
  double histogram_quantile(const std::string& name,
                            const std::map<std::string, std::string>& want,
                            double q) const {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    for (const Sample& s : samples) {
      if (s.name != name + "_bucket") continue;
      bool match = true;
      for (const auto& [k, v] : want) {
        const auto it = s.labels.find(k);
        if (it == s.labels.end() || it->second != v) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      const auto le = s.labels.find("le");
      if (le == s.labels.end()) continue;
      const double upper = le->second == "+Inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::strtod(le->second.c_str(), nullptr);
      buckets.emplace_back(upper, s.value);
    }
    if (buckets.empty()) return std::nan("");
    std::sort(buckets.begin(), buckets.end());
    const double total = buckets.back().second;
    if (total <= 0.0) return std::nan("");
    const double rank = q * total;
    double prev_le = 0.0, prev_cum = 0.0;
    for (const auto& [le, cum] : buckets) {
      if (cum >= rank) {
        if (std::isinf(le)) return prev_le;  // rank in the overflow bucket
        const double in_bucket = cum - prev_cum;
        if (in_bucket <= 0.0) return le;
        return prev_le + (le - prev_le) * (rank - prev_cum) / in_bucket;
      }
      prev_le = le;
      prev_cum = cum;
    }
    return prev_le;
  }
};

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string fmt_or_dash(const char* fmt, double v) {
  if (v != v) return "-";
  char buf[48];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

void render_row(const Source& src, const std::string& scope_label,
                const std::map<std::string, std::string>& key) {
  const double score = src.find("rtopex_health_score", key);
  if (score != score) return;  // scope absent from this snapshot
  const double util = src.find("rtopex_health_utilization", key);
  const double miss = src.find("rtopex_health_miss_rate", key);
  const double burn = src.find("rtopex_health_burn_rate", key);
  // Percentiles from the native slack histogram when exported
  // (run-cumulative, bucket-resolution); snapshots without it fall back
  // to the precomputed windowed gauges.
  double p50 = src.histogram_quantile("rtopex_health_slack_us", key, 0.5);
  double p99 = src.histogram_quantile("rtopex_health_slack_us", key, 0.01);
  if (p50 != p50) p50 = src.find("rtopex_health_slack_p50_us", key);
  if (p99 != p99) p99 = src.find("rtopex_health_slack_p99_us", key);
  const double offered = src.find("rtopex_health_window_offered", key);
  std::printf("%-18s %-10s %6s %10s %6s %10s %10s %8s %6s\n",
              basename_of(src.path).c_str(), scope_label.c_str(),
              fmt_or_dash("%.0f%%", util * 100.0).c_str(),
              fmt_or_dash("%.2e", miss).c_str(),
              fmt_or_dash("%.2f", burn).c_str(),
              fmt_or_dash("%.0f us", p50).c_str(),
              fmt_or_dash("%.0f us", p99).c_str(),
              fmt_or_dash("%.0f", offered).c_str(),
              fmt_or_dash("%.0f", score).c_str());
}

void render_frame(const std::vector<Source>& sources, unsigned frame,
                  bool plain) {
  if (!plain) std::printf("\033[H\033[2J");
  std::printf("rtopex_top — %zu source%s, frame %u\n\n", sources.size(),
              sources.size() == 1 ? "" : "s", frame);
  std::printf("%-18s %-10s %6s %10s %6s %10s %10s %8s %6s\n", "source",
              "scope", "util", "miss rate", "burn", "slack p50", "slack p99",
              "offered", "score");
  for (const Source& src : sources) {
    if (!src.present) {
      std::printf("%-18s waiting for %s ...\n", basename_of(src.path).c_str(),
                  src.path.c_str());
      continue;
    }
    bool any = false;
    for (const Sample& s : src.samples)
      if (s.name == "rtopex_health_score") any = true;
    if (!any) {
      std::printf("%-18s no health series (run with --health)\n",
                  basename_of(src.path).c_str());
      continue;
    }
    render_row(src, "cluster", {{"scope", "cluster"}});
    // Node rows in numeric order; probe ids until one is missing (node ids
    // are dense in every substrate's topology).
    for (unsigned n = 0; n < 4096; ++n) {
      const std::map<std::string, std::string> key{
          {"scope", "node"}, {"node", std::to_string(n)}};
      const double score = src.find("rtopex_health_score", key);
      if (score != score) break;
      render_row(src, "node " + std::to_string(n), key);
    }
    const double warn =
        src.find("rtopex_health_active_alerts", {{"severity", "warn"}});
    const double page =
        src.find("rtopex_health_active_alerts", {{"severity", "page"}});
    if (warn == warn || page == page)
      std::printf("%-18s active alerts: %.0f warn, %.0f page\n",
                  basename_of(src.path).c_str(), warn == warn ? warn : 0.0,
                  page == page ? page : 0.0);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Source> sources;
  unsigned frames = 0;  // 0 = until interrupted
  double interval_ms = 500.0;
  bool plain = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      frames = 1;
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--plain") == 0) {
      plain = true;
    } else if (argv[i][0] != '-') {
      sources.push_back({argv[i], false, {}});
    } else {
      std::fprintf(stderr,
                   "usage: %s FILE... [--once] [--frames N]\n"
                   "  [--interval-ms T] [--plain]\n",
                   argv[0]);
      return 1;
    }
  }
  if (sources.empty()) {
    std::fprintf(stderr, "%s: no snapshot files given\n", argv[0]);
    return 1;
  }
  if (frames == 1) plain = true;  // --once is for scripts; keep logs clean

  for (unsigned frame = 1; frames == 0 || frame <= frames; ++frame) {
    for (Source& src : sources) src.reload();
    render_frame(sources, frame, plain);
    if (frames != 0 && frame == frames) break;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        interval_ms));
  }

  // --once doubles as a health gate: exit 3 if anything is paging.
  if (frames == 1)
    for (const Source& src : sources)
      if (src.present) {
        const double page = src.find("rtopex_health_active_alerts",
                                     {{"severity", "page"}});
        if (page == page && page > 0.0) return 3;
      }
  return 0;
}
