// Standalone continuous-profiling demo: drives the real uplink PHY chain
// (FFT -> demod -> turbo decode) through the obs/profile layer and emits
// all three exports — the per-stage counter table, collapsed-stack folded
// output for flamegraph tooling, and (optionally) a Chrome trace with
// per-core counter lanes plus a Prometheus rtopex_profile_* exposition.
//
//   $ ./rtopex_profile [options]
//
//   --subframes N      subframes to decode (default 24)
//   --mcs A,B,C        MCS cycle (default 4,16,27 — enough variation for
//                      the cycles-domain Eq. (1) fit)
//   --antennas N       receive antennas (default 2)
//   --backend B        auto | perf | software (default auto: probe
//                      perf_event_open, fall back to software counters)
//   --folded FILE      collapsed stacks ("stage;substage count"); default
//                      rtopex_profile.folded
//   --trace FILE       Chrome trace JSON with the counter lanes
//   --metrics FILE     Prometheus exposition ("-" = stdout)
//
// Exit status is 1 on bad usage, 2 when a subframe fails CRC.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_utils.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile/profile_report.hpp"
#include "phy/lte_params.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"

int main(int argc, char** argv) {
  using namespace rtopex;
  namespace profile = obs::profile;

  std::size_t subframes = 24;
  unsigned antennas = 2;
  std::vector<unsigned> mcs_cycle = {4, 16, 27};
  profile::ProfileConfig pcfg;
  pcfg.enabled = true;
  std::string folded_path = "rtopex_profile.folded";
  std::string trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--subframes") == 0 && i + 1 < argc) {
      subframes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--mcs") == 0 && i + 1 < argc) {
      mcs_cycle.clear();
      for (const char* p = argv[++i]; *p;) {
        mcs_cycle.push_back(static_cast<unsigned>(std::atoi(p)));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (std::strcmp(argv[i], "--antennas") == 0 && i + 1 < argc) {
      antennas = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      const char* b = argv[++i];
      if (std::strcmp(b, "auto") == 0) {
        pcfg.backend = profile::Backend::kAuto;
      } else if (std::strcmp(b, "perf") == 0) {
        pcfg.backend = profile::Backend::kPerf;
      } else if (std::strcmp(b, "software") == 0) {
        pcfg.backend = profile::Backend::kSoftware;
      } else {
        std::fprintf(stderr, "unknown backend '%s'\n", b);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--folded") == 0 && i + 1 < argc) {
      folded_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--subframes N] [--mcs A,B,C] [--antennas N]\n"
                   "  [--backend auto|perf|software] [--folded FILE]\n"
                   "  [--trace FILE] [--metrics FILE]\n",
                   argv[0]);
      return 1;
    }
  }
  if (subframes == 0 || mcs_cycle.empty() || antennas == 0) {
    std::fprintf(stderr, "invalid sizing options\n");
    return 1;
  }

  phy::UplinkConfig cfg;
  cfg.num_antennas = antennas;
  phy::UplinkTransmitter tx(cfg);
  phy::UplinkRxProcessor rx(cfg);

  // One pre-built TX subframe per distinct MCS (the RX job decodes copies).
  struct Variant {
    unsigned mcs;
    std::uint32_t subframe_index;
    std::vector<phy::IqVector> antenna_samples;
  };
  std::vector<Variant> variants;
  for (const unsigned mcs : mcs_cycle) {
    bool seen = false;
    for (const Variant& v : variants) seen = seen || v.mcs == mcs;
    if (seen) continue;
    const phy::TxSubframe sf = tx.transmit(mcs, 1, 42 + mcs);
    variants.push_back({mcs, sf.subframe_index,
                        std::vector<phy::IqVector>(antennas, sf.samples)});
  }

  profile::Profiler profiler(1, pcfg);
  profiler.set_clock([] { return static_cast<TimePoint>(monotonic_ns()); });
  std::printf("backend: %s (perf %savailable)\n",
              profile::to_string(profiler.backend()),
              profile::perf_available() ? "" : "un");

  phy::UplinkRxJob job = rx.make_job();
  phy::UplinkRxResult result;
  auto& ws = phy::UplinkRxProcessor::thread_workspace();
  std::size_t crc_failures = 0;
  for (std::size_t n = 0; n < subframes; ++n) {
    const Variant& v = variants[n % variants.size()];
    profile::ProfileSpan sf_span(&profiler, 0, "subframe", obs::Stage::kNone,
                                 0, static_cast<std::uint32_t>(n));
    rx.begin(job, v.antenna_samples, v.mcs, v.subframe_index);
    {
      profile::ProfileSpan span(&profiler, 0, "fft", obs::Stage::kFft, 0,
                                static_cast<std::uint32_t>(n));
      for (std::size_t s = 0; s < rx.fft_subtask_count(); ++s)
        rx.run_fft_subtask(job, s, ws);
      span.set_payload(static_cast<std::uint32_t>(rx.fft_subtask_count()), 0);
    }
    {
      profile::ProfileSpan span(&profiler, 0, "demod", obs::Stage::kDemod, 0,
                                static_cast<std::uint32_t>(n));
      rx.demod_prepare(job);
      for (std::size_t s = 0; s < rx.demod_subtask_count(); ++s)
        rx.run_demod_subtask(job, s);
    }
    {
      profile::ProfileSpan span(&profiler, 0, "decode", obs::Stage::kDecode,
                                0, static_cast<std::uint32_t>(n));
      rx.decode_prepare(job, ws);
      const std::size_t dec_n = rx.decode_subtask_count(job);
      for (std::size_t s = 0; s < dec_n; ++s)
        rx.run_decode_subtask(job, s, ws);
      rx.finalize_into(job, ws, result);
      span.set_payload(
          profile::pack_decode_regressors(phy::modulation_order(v.mcs),
                                          antennas, v.mcs),
          profile::pack_decode_load(static_cast<unsigned>(dec_n),
                                    result.iterations));
    }
    if (!result.crc_ok) ++crc_failures;
  }

  const profile::ProfileStore store = profiler.take();
  const profile::ProfileReport report = profile::aggregate(store);
  std::printf("%s", profile::render_report(report).c_str());

  if (!folded_path.empty()) {
    const std::string text = profile::folded(store);
    std::FILE* f = std::fopen(folded_path.c_str(), "w");
    if (f) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("folded stacks -> %s\n", folded_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", folded_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    // The profile CLI records no TraceEvents; the trace carries only the
    // counter lanes (still a valid Perfetto/chrome://tracing file).
    obs::TraceStore empty;
    obs::ChromeTraceOptions opts;
    opts.process_name = "rtopex_profile";
    opts.num_cores = 1;
    opts.counters = profile::counter_tracks(store);
    obs::write_chrome_trace(trace_path, empty, opts);
    std::printf("counter trace -> %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry reg;
    profile::fill_registry(report, reg);
    if (metrics_path == "-") {
      std::printf("---- metrics ----\n%s", reg.render().c_str());
    } else {
      std::FILE* f = std::fopen(metrics_path.c_str(), "w");
      if (f) {
        const std::string text = reg.render();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("metrics -> %s\n", metrics_path.c_str());
      }
    }
  }
  return crc_failures == 0 ? 0 : 2;
}
