// Live demo of the real-thread runtime: pinned worker threads decode real
// subframes (full turbo/FFT chain) delivered by a periodic transport ticker,
// with RT-OPEX mailbox migration between cores.
//
//   $ ./live_runtime [partitioned|global|rtopex]
//
// The subframe period is stretched (25 ms) so that the demo runs correctly
// on any host, including single-core machines; on a multicore machine with
// CAP_SYS_NICE you can tighten it toward the real 1 ms.
#include <cstdio>
#include <cstring>

#include "runtime/node_runtime.hpp"

int main(int argc, char** argv) {
  using namespace rtopex;

  runtime::RuntimeConfig cfg;
  cfg.mode = runtime::RuntimeMode::kRtOpex;
  if (argc > 1) {
    if (std::strcmp(argv[1], "partitioned") == 0)
      cfg.mode = runtime::RuntimeMode::kPartitioned;
    else if (std::strcmp(argv[1], "global") == 0)
      cfg.mode = runtime::RuntimeMode::kGlobal;
    else if (std::strcmp(argv[1], "rtopex") != 0) {
      std::fprintf(stderr, "usage: %s [partitioned|global|rtopex]\n", argv[0]);
      return 1;
    }
  }

  cfg.num_basestations = 2;
  cfg.cores_per_bs = 2;
  cfg.global_cores = 4;
  cfg.subframes_per_bs = 12;
  cfg.subframe_period = milliseconds(25);
  cfg.deadline_budget = milliseconds(50);
  cfg.mcs_cycle = {27, 10, 20};
  cfg.pin_threads = true;       // best effort
  cfg.phy.bandwidth = phy::Bandwidth::kMHz10;

  const char* mode_name = cfg.mode == runtime::RuntimeMode::kPartitioned
                              ? "partitioned"
                              : cfg.mode == runtime::RuntimeMode::kGlobal
                                    ? "global"
                                    : "rt-opex";
  std::printf("mode: %s | 2 basestations x 12 subframes | period 25 ms\n\n",
              mode_name);

  runtime::NodeRuntime rt(cfg);
  const auto report = rt.run();

  std::printf("%-4s %-4s %-4s %9s %9s %9s %6s %5s %5s\n", "bs", "idx", "mcs",
              "fft_us", "demod_us", "dec_us", "iters", "mig", "crc");
  for (const auto& r : report.records) {
    std::printf("%-4u %-4u %-4u %9.0f %9.0f %9.0f %6u %5u %5s\n", r.bs,
                r.index, r.mcs, to_us(r.timing.fft), to_us(r.timing.demod),
                to_us(r.timing.decode), r.iterations,
                r.timing.fft_migrated + r.timing.decode_migrated,
                r.crc_ok ? "ok" : "FAIL");
  }
  std::printf("\ndecoded %zu/%zu subframes | migrated subtasks: %zu | "
              "recoveries: %zu\n",
              report.records.size() - report.crc_failures,
              report.records.size(), report.migrations, report.recoveries);
  return report.crc_failures == 0 ? 0 : 2;
}
