// Live demo of the real-thread runtime: pinned worker threads decode real
// subframes (full turbo/FFT chain) delivered by a periodic transport ticker,
// with RT-OPEX mailbox migration between cores.
//
//   $ ./live_runtime [partitioned|global|rtopex] [options]
//
// Sizing options:
//   --basestations N     basestations (default 2; workers = 2 per BS)
//   --subframes N        subframes per basestation (default 12)
//   --period-ms T        subframe period in ms (default 25; budget = 2x)
//
// Observability options:
//   --trace FILE         enable the per-core tracer; write Chrome
//                        trace-event JSON (chrome://tracing / Perfetto)
//   --trace-csv FILE     also dump the raw events as CSV
//   --metrics FILE       Prometheus text snapshots, rendered periodically
//                        during the run and finalized after it ("-" =
//                        stdout). File snapshots are written to FILE.tmp
//                        and renamed into place, so a scraper never sees
//                        a torn half-written exposition.
//   --metrics-period-ms  snapshot period (default: 4 subframe periods)
//   --analyze            run the deadline-miss postmortem over the trace
//                        after the run: prints the one-line JSON summary
//                        and a per-cause breakdown (implies tracing)
//   --health             live SLO/burn-rate health engine on the ticker
//                        thread: alerts print after the run, health gauges
//                        join the --metrics snapshots while it runs. The
//                        millisecond-cadence detection windows are scaled
//                        by the stretched subframe period automatically.
//   --adaptive           online adaptive estimators (per-BS iteration
//                        predictors + Eq. (1) decode fit) in the slack
//                        check and migration planning
//   --profile PREFIX     continuous profiling of every stage section
//                        (perf counters when permitted, thread-CPU/rusage
//                        fallback otherwise): prints the per-stage table,
//                        writes PREFIX.folded collapsed stacks (flamegraph
//                        input), and adds per-core counter lanes to
//                        --trace output
//
// Throughput options (partitioned/global modes):
//   --batch N            drain up to N queued subframes per worker pass and
//                        fuse their decode stages into one SoA batch
//                        (default 1 = off; max 16)
//   --pin LIST           pin worker i to the i-th CPU of LIST (kernel
//                        cpulist syntax, e.g. "0-3" or "0,2,4,6"); must
//                        list at least one CPU per worker
//   --ticker-core N      pin the transport ticker to CPU N
//   --numa               pre-warm one decode workspace per worker on the
//                        worker's NUMA node before the schedule starts
//   --no-deadlines       disable slack-check dropping: decode every
//                        delivered subframe even when its deadline is
//                        hopeless (throughput benchmarking — aggregate
//                        rate matters, per-subframe latency does not)
//
// Resilience options:
//   --kill-core N        park worker N mid-run (watchdog fails it over)
//   --at-ms T            kill at T ms into the run (default: half the run)
//   --fronthaul-loss P   drop each subframe with probability P
//
// The default subframe period is stretched (25 ms) so that the demo runs
// correctly on any host, including single-core machines; on a multicore
// machine with CAP_SYS_NICE you can tighten it toward the real 1 ms.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/analysis/analysis.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/health/health.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile/profile_report.hpp"
#include "runtime/affinity.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/node_runtime.hpp"

int main(int argc, char** argv) {
  using namespace rtopex;

  runtime::RuntimeConfig cfg;
  cfg.mode = runtime::RuntimeMode::kRtOpex;
  int kill_core = -1;
  double kill_at_ms = -1.0;
  double loss_prob = 0.0;
  unsigned basestations = 2;
  std::size_t subframes = 12;
  double period_ms = 25.0;
  double metrics_period_ms = 0.0;
  bool analyze = false;
  bool health = false;
  int batch = 1;
  int ticker_core = -1;
  bool numa = false;
  std::string pin_list;
  std::string trace_path, trace_csv_path, metrics_path, profile_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "partitioned") == 0) {
      cfg.mode = runtime::RuntimeMode::kPartitioned;
    } else if (std::strcmp(argv[i], "global") == 0) {
      cfg.mode = runtime::RuntimeMode::kGlobal;
    } else if (std::strcmp(argv[i], "rtopex") == 0) {
      cfg.mode = runtime::RuntimeMode::kRtOpex;
    } else if (std::strcmp(argv[i], "--basestations") == 0 && i + 1 < argc) {
      basestations = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--subframes") == 0 && i + 1 < argc) {
      subframes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--period-ms") == 0 && i + 1 < argc) {
      period_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-csv") == 0 && i + 1 < argc) {
      trace_csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-period-ms") == 0 &&
               i + 1 < argc) {
      metrics_period_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze = true;
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health = true;
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      cfg.adaptive = true;
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--pin") == 0 && i + 1 < argc) {
      pin_list = argv[++i];
    } else if (std::strcmp(argv[i], "--ticker-core") == 0 && i + 1 < argc) {
      ticker_core = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--numa") == 0) {
      numa = true;
    } else if (std::strcmp(argv[i], "--no-deadlines") == 0) {
      cfg.enforce_deadlines = false;
    } else if (std::strcmp(argv[i], "--kill-core") == 0 && i + 1 < argc) {
      kill_core = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--at-ms") == 0 && i + 1 < argc) {
      kill_at_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--fronthaul-loss") == 0 && i + 1 < argc) {
      loss_prob = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [partitioned|global|rtopex]\n"
                   "  [--basestations N] [--subframes N] [--period-ms T]\n"
                   "  [--trace FILE] [--trace-csv FILE] [--metrics FILE]\n"
                   "  [--metrics-period-ms T] [--analyze] [--health]\n"
                   "  [--adaptive] [--profile PREFIX]\n"
                   "  [--batch N] [--pin LIST] [--ticker-core N] [--numa]\n"
                   "  [--no-deadlines]\n"
                   "  [--kill-core N] [--at-ms T] [--fronthaul-loss P]\n",
                   argv[0]);
      return 1;
    }
  }
  if (basestations == 0 || subframes == 0 || period_ms <= 0.0) {
    std::fprintf(stderr, "invalid sizing options\n");
    return 1;
  }
  if (batch < 1 || batch > 16) {
    std::fprintf(stderr, "--batch must be in [1, 16]\n");
    return 1;
  }
  if (batch > 1 && cfg.mode == runtime::RuntimeMode::kRtOpex) {
    std::fprintf(stderr,
                 "--batch requires partitioned or global mode (RT-OPEX "
                 "migrates decode per-subtask)\n");
    return 1;
  }

  cfg.num_basestations = basestations;
  cfg.cores_per_bs = 2;
  cfg.global_cores = 2 * basestations;
  const unsigned workers = cfg.mode == runtime::RuntimeMode::kGlobal
                               ? cfg.global_cores
                               : basestations * cfg.cores_per_bs;
  cfg.throughput.batch = static_cast<unsigned>(batch);
  cfg.throughput.numa_pools = numa;
  cfg.throughput.ticker_core = ticker_core;
  if (!pin_list.empty()) {
    cfg.throughput.worker_cores = runtime::parse_cpulist(pin_list);
    if (cfg.throughput.worker_cores.size() < workers) {
      std::fprintf(stderr,
                   "--pin lists %zu CPUs but this run needs %u workers\n",
                   cfg.throughput.worker_cores.size(), workers);
      return 1;
    }
    cfg.throughput.pin_workers = true;
  }
  cfg.subframes_per_bs = subframes;
  cfg.subframe_period = microseconds(static_cast<long>(period_ms * 1000.0));
  cfg.deadline_budget = 2 * cfg.subframe_period;
  cfg.mcs_cycle = {27, 10, 20};
  cfg.pin_threads = true;       // best effort
  cfg.phy.bandwidth = phy::Bandwidth::kMHz10;
  cfg.resilience.fronthaul_faults.loss_prob = loss_prob;
  if (kill_core >= 0) {
    cfg.resilience.enable_watchdog = true;
    cfg.resilience.watchdog_timeout = cfg.subframe_period;
  }
  cfg.trace.enabled =
      analyze || !trace_path.empty() || !trace_csv_path.empty();
  cfg.profile.enabled = !profile_prefix.empty();

  // The health defaults assume the real 1 ms TTI; this demo stretches the
  // subframe period for portability, so stretch the detection windows by
  // the same factor to keep them the same number of subframes wide.
  if (health) {
    cfg.health.enabled = true;
    const double scale = period_ms;  // defaults are per-1ms-subframe
    auto stretch = [scale](Duration& d) {
      d = static_cast<Duration>(static_cast<double>(d) * scale);
    };
    stretch(cfg.health.eval_period);
    for (obs::health::BurnRateRule* rule :
         {&cfg.health.fast_burn, &cfg.health.slow_burn}) {
      stretch(rule->short_window);
      stretch(rule->long_window);
      stretch(rule->clear_hold);
    }
    // A demo-sized run offers few subframes per window; don't gate firing
    // on a fleet-sized sample count.
    cfg.health.min_window_samples = 4;
  }

  // Periodic Prometheus snapshots from the ticker. A file sink writes the
  // whole exposition to FILE.tmp and renames it over FILE, so a concurrent
  // textfile collector reads either the previous snapshot or this one,
  // never a truncated half-write; "-" prints.
  auto write_atomic = [](const std::string& path, const std::string& text) {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (!f) return;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::rename(tmp.c_str(), path.c_str());
  };
  if (!metrics_path.empty()) {
    if (metrics_period_ms <= 0.0) metrics_period_ms = 4.0 * period_ms;
    cfg.metrics_period =
        microseconds(static_cast<long>(metrics_period_ms * 1000.0));
    cfg.metrics_sink = [metrics_path, write_atomic](const std::string& text) {
      if (metrics_path == "-") {
        std::printf("---- metrics snapshot ----\n%s", text.c_str());
        return;
      }
      write_atomic(metrics_path, text);
    };
  }

  // Kill switch: an injected hook that parks the chosen worker once the
  // run has passed --at-ms (default: halfway through the schedule).
  if (kill_at_ms < 0.0)
    kill_at_ms =
        to_us(cfg.subframe_period) / 1000.0 * cfg.subframes_per_bs / 2.0;
  static std::atomic<bool> armed{false};
  const std::uint32_t kill_index = static_cast<std::uint32_t>(
      kill_at_ms * 1000.0 / to_us(cfg.subframe_period));
  runtime::fault::Hooks hooks;
  hooks.transport_jitter = [kill_index](unsigned, std::uint32_t index) {
    if (index >= kill_index) armed.store(true, std::memory_order_release);
    return Duration{0};
  };
  hooks.kill_worker = [kill_core](std::size_t worker) {
    return static_cast<int>(worker) == kill_core &&
           armed.load(std::memory_order_acquire);
  };
  std::unique_ptr<runtime::fault::ScopedInjection> injection;
  if (kill_core >= 0)
    injection =
        std::make_unique<runtime::fault::ScopedInjection>(std::move(hooks));

  const char* mode_name = cfg.mode == runtime::RuntimeMode::kPartitioned
                              ? "partitioned"
                              : cfg.mode == runtime::RuntimeMode::kGlobal
                                    ? "global"
                                    : "rt-opex";
  std::printf("mode: %s | %u basestations x %zu subframes | period %.3g ms\n",
              mode_name, basestations, subframes, period_ms);
  if (batch > 1 || !pin_list.empty() || numa || ticker_core >= 0) {
    const std::string pinned =
        pin_list.empty() ? std::string() : " | pinned " + pin_list;
    std::printf("throughput: batch %d%s%s%s\n", batch, pinned.c_str(),
                ticker_core >= 0 ? " | dedicated ticker core" : "",
                numa ? " | numa pools" : "");
  }
  if (kill_core >= 0)
    std::printf("killing worker %d at ~%.0f ms (watchdog enabled)\n",
                kill_core, kill_at_ms);
  if (loss_prob > 0.0)
    std::printf("fronthaul loss probability: %.2f\n", loss_prob);
  std::printf("\n");

  runtime::NodeRuntime rt(cfg);
  const auto report = rt.run();

  std::printf("%-4s %-4s %-4s %9s %9s %9s %6s %5s %5s\n", "bs", "idx", "mcs",
              "fft_us", "demod_us", "dec_us", "iters", "mig", "crc");
  for (const auto& r : report.records) {
    const char* status = r.lost ? "lost"
                         : r.late_arrival ? "late"
                         : r.dropped ? "drop"
                         : r.crc_ok ? "ok"
                                    : "FAIL";
    std::printf("%-4u %-4u %-4u %9.0f %9.0f %9.0f %6u %5u %5s\n", r.bs,
                r.index, r.mcs, to_us(r.timing.fft), to_us(r.timing.demod),
                to_us(r.timing.decode), r.iterations,
                r.timing.fft_migrated + r.timing.decode_migrated, status);
  }
  const auto& res = report.resilience;
  std::printf("\ndecoded %zu/%zu subframes | migrated subtasks: %zu | "
              "recoveries: %zu\n",
              report.records.size() - report.crc_failures -
                  res.lost_subframes - res.late_arrivals - report.dropped,
              report.records.size(), report.migrations, report.recoveries);
  // Conservation: every offered subframe must come back as exactly one
  // record (decoded, dropped, late or lost) — batching and repartitioning
  // may reorder work but never create or leak subframes.
  const std::size_t expected =
      static_cast<std::size_t>(basestations) * subframes;
  const bool conserved = report.records.size() == expected;
  std::printf("conservation: %zu/%zu records (%s) | batch-decoded "
              "subframes: %zu\n",
              report.records.size(), expected, conserved ? "ok" : "BROKEN",
              report.batched_subframes);
  if (kill_core >= 0 || loss_prob > 0.0)
    std::printf("resilience: failovers %zu | repartitions %zu | requeued %zu "
                "| lost %zu | late %zu | degraded %zu\n",
                res.failovers, res.repartitions, res.requeued_jobs,
                res.lost_subframes, res.late_arrivals, res.degraded);

  if (cfg.trace.enabled) {
    obs::ChromeTraceOptions opts;
    opts.process_name = std::string("live_runtime ") + mode_name;
    opts.num_cores = cfg.mode == runtime::RuntimeMode::kGlobal
                         ? cfg.global_cores
                         : cfg.num_basestations * cfg.cores_per_bs;
    if (cfg.profile.enabled)
      opts.counters = obs::profile::counter_tracks(report.profile);
    if (!trace_path.empty()) obs::write_chrome_trace(trace_path, report.trace, opts);
    if (!trace_csv_path.empty()) obs::write_trace_csv(trace_csv_path, report.trace);
    std::printf("trace: %zu events | ring drops %llu | store drops %llu%s%s\n",
                report.trace.events.size(),
                static_cast<unsigned long long>(report.trace.ring_drops),
                static_cast<unsigned long long>(report.trace.store_drops),
                trace_path.empty() ? "" : " -> ",
                trace_path.c_str());
  }
  if (cfg.profile.enabled) {
    const obs::profile::ProfileReport prof =
        obs::profile::aggregate(report.profile);
    std::printf("\nprofile (%zu spans)\n%s", report.profile.samples.size(),
                obs::profile::render_report(prof).c_str());
    const std::string folded_path = profile_prefix + ".folded";
    write_atomic(folded_path, obs::profile::folded(report.profile));
    std::printf("folded stacks -> %s\n", folded_path.c_str());
  }
  if (health) {
    const auto& h = report.health.cluster;
    std::printf("\nhealth: score %.0f | miss rate %.2e | burn %.2f | "
                "slack p50/p99 %.0f/%.0f us\n",
                h.health_score, h.miss_rate, h.burn_rate, h.slack_p50_us,
                h.slack_p99_us);
    if (report.alerts.empty())
      std::printf("alert log: empty\n");
    else
      for (const obs::health::Alert& a : report.alerts)
        std::printf("  %s\n", obs::health::describe(a).c_str());
  }
  obs::analysis::AnalysisReport analysis_report;
  if (analyze) {
    obs::analysis::AnalyzerOptions aopts;
    aopts.budget = cfg.deadline_budget;
    analysis_report = obs::analysis::analyze(report.trace, aopts);
    std::printf("\nanalysis: %s\n",
                obs::analysis::summary_json(analysis_report).c_str());
    for (unsigned c = 1; c < obs::analysis::kNumMissCauses; ++c)
      if (analysis_report.cause_counts[c])
        std::printf("  %-22s %llu\n",
                    obs::analysis::to_string(
                        static_cast<obs::analysis::MissCause>(c)),
                    static_cast<unsigned long long>(
                        analysis_report.cause_counts[c]));
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry reg;
    runtime::fill_registry(report, reg);
    if (analyze) obs::analysis::fill_registry(analysis_report, reg);
    if (metrics_path == "-")
      std::printf("---- final metrics ----\n%s", reg.render().c_str());
    else
      write_atomic(metrics_path, reg.render());
  }
  return report.crc_failures == 0 && conserved ? 0 : 2;
}
