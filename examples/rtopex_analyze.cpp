// Deadline-miss postmortem CLI: reads a trace exported with --trace-csv
// (from live_runtime, scheduler_timelines or any bench), reconstructs every
// subframe's critical path, attributes each miss to a cause from the fixed
// taxonomy, and writes the machine-readable artifacts:
//
//   $ ./rtopex_analyze TRACE.csv [options]
//
//   --out DIR                 artifact directory (default "."): writes
//                             miss_report.csv and, with --trajectories,
//                             slack_trajectory.csv
//   --budget-us N             end-to-end deadline budget for traces that
//                             predate arrival events (default 2000)
//   --nominal-transport-us N  expected one-way fronthaul delay; transport
//                             beyond it is the cloud-tail overage
//                             (default 500)
//   --failover-window-ms N    queueing misses within this window of a
//                             watchdog fire become failover_repartition
//                             (default 100)
//   --trajectories            also write the per-basestation slack
//                             trajectory CSV
//   --model-fallback          estimate stage budgets from the paper's
//                             Eq. (1) model when the trace carries none
//   --metrics FILE            Prometheus rendering of the analysis
//                             counters ("-" = stdout)
//   --strict                  exit non-zero when the trace lost events
//                             (ring or store drops): a lossy trace means
//                             the attribution undercounts
//
// Traces that lost events always print the per-ring drop breakdown on
// stderr (the same rendering the bench warning uses).
// The last stdout line is always the one-line JSON summary, so scripts can
// `tail -n 1` it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "model/task_cost_model.hpp"
#include "obs/analysis/analysis.hpp"

int main(int argc, char** argv) {
  using namespace rtopex;
  namespace analysis = obs::analysis;

  std::string trace_path, out_dir = ".", metrics_path;
  analysis::AnalyzerOptions opts;
  bool trajectories = false;
  bool model_fallback = false;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--budget-us") == 0 && i + 1 < argc) {
      opts.budget = microseconds_f(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "--nominal-transport-us") == 0 &&
               i + 1 < argc) {
      opts.nominal_transport = microseconds_f(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "--failover-window-ms") == 0 &&
               i + 1 < argc) {
      opts.failover_window =
          microseconds_f(std::atof(argv[++i]) * 1000.0);
    } else if (std::strcmp(argv[i], "--trajectories") == 0) {
      trajectories = true;
    } else if (std::strcmp(argv[i], "--model-fallback") == 0) {
      model_fallback = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (argv[i][0] != '-' && trace_path.empty()) {
      trace_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s TRACE.csv [--out DIR] [--budget-us N]\n"
                   "  [--nominal-transport-us N] [--failover-window-ms N]\n"
                   "  [--trajectories] [--model-fallback] [--metrics FILE]\n"
                   "  [--strict]\n",
                   argv[0]);
      return 1;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "%s: no trace file given\n", argv[0]);
    return 1;
  }
  opts.keep_trajectories = trajectories;

  // Paper-calibrated Eq. (1) stage split at N = 2, 10 MHz — only consulted
  // for stages whose trace events carry no in-band estimate.
  model::TaskCostModel fallback(model::paper_gpp_model(), 2, 50);
  if (model_fallback) opts.cost_model = &fallback;

  try {
    const obs::TraceStore store = analysis::load_trace_csv(trace_path);
    const std::string drops = obs::describe_trace_drops(store);
    if (!drops.empty())
      std::fprintf(stderr, "%s: %s — attribution may undercount\n",
                   trace_path.c_str(), drops.c_str());
    const analysis::AnalysisReport report = analysis::analyze(store, opts);

    const std::string miss_path = out_dir + "/miss_report.csv";
    analysis::write_miss_report_csv(miss_path, report);
    std::fprintf(stderr, "wrote %s (%llu misses / %llu subframes)\n",
                 miss_path.c_str(),
                 static_cast<unsigned long long>(report.misses),
                 static_cast<unsigned long long>(report.subframes));
    for (const analysis::AlertWindow& w : report.alerts) {
      static const char* const kScopes[] = {"cluster", "node", "bs"};
      const char* scope = w.scope_kind < 3 ? kScopes[w.scope_kind] : "?";
      if (w.cleared_at >= 0)
        std::fprintf(stderr,
                     "alert: rule %u %s %s %u fired %.3f ms cleared %.3f ms"
                     " — %llu misses in window, dominant cause %s\n",
                     w.rule, w.severity >= 2 ? "PAGE" : "warn", scope,
                     w.scope_id, static_cast<double>(w.fired_at) * 1e-6,
                     static_cast<double>(w.cleared_at) * 1e-6,
                     static_cast<unsigned long long>(w.misses_in_window),
                     analysis::to_string(w.dominant_cause));
      else
        std::fprintf(stderr,
                     "alert: rule %u %s %s %u fired %.3f ms STILL FIRING"
                     " — %llu misses in window, dominant cause %s\n",
                     w.rule, w.severity >= 2 ? "PAGE" : "warn", scope,
                     w.scope_id, static_cast<double>(w.fired_at) * 1e-6,
                     static_cast<unsigned long long>(w.misses_in_window),
                     analysis::to_string(w.dominant_cause));
    }
    if (trajectories) {
      const std::string traj_path = out_dir + "/slack_trajectory.csv";
      analysis::write_slack_trajectory_csv(traj_path, report);
      std::fprintf(stderr, "wrote %s\n", traj_path.c_str());
    }
    if (!metrics_path.empty()) {
      obs::MetricsRegistry reg;
      analysis::fill_registry(report, reg);
      if (metrics_path == "-")
        std::printf("%s", reg.render().c_str());
      else
        reg.write(metrics_path);
    }
    std::printf("%s\n", analysis::summary_json(report).c_str());
    if (strict && store.total_drops() > 0) {
      std::fprintf(stderr, "%s: --strict: refusing a lossy trace\n", argv[0]);
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return 0;
}
